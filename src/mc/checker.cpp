#include "mc/checker.h"

#include <memory>
#include <string>

#include "mc/checkpoint.h"
#include "util/hash.h"
#include "util/resource.h"

namespace nicemc::mc {

using detail::SearchClock;
using detail::seconds_since;

std::unique_ptr<util::ProgressReporter> Checker::make_reporter() const {
  if (telem_ == nullptr ||
      (options_.progress_path.empty() && !options_.progress_tty)) {
    return nullptr;
  }
  util::ProgressReporter::Options po;
  po.path = options_.progress_path;
  po.interval_seconds = options_.progress_interval_seconds;
  po.tty = options_.progress_tty;
  // A resumed run appends and continues the stream's sequence numbers,
  // so kill-and-resume yields one continuous monotone NDJSON stream.
  po.append = options_.progress_append || options_.resume;
  auto reporter = std::make_unique<util::ProgressReporter>(*telem_, po);
  reporter->start();
  return reporter;
}

void Checker::finish_reporter(util::ProgressReporter* reporter,
                              CheckerResult& result) {
  if (reporter == nullptr) return;
  reporter->stop(limit_reason_name(result.hit_limit));
  result.telemetry.progress_snapshots = reporter->snapshots_emitted();
}

CheckerResult Checker::run() {
  std::unique_ptr<Durability> durability;
  if (!options_.checkpoint_path.empty() ||
      options_.memory_budget_bytes > 0 || options_.handle_signals) {
    durability = std::make_unique<Durability>(
        options_, search_config_fingerprint(cfg_, options_, executor_),
        fp_memo_.get(), disc_memo_.get());
    if (options_.resume) {
      // Resume-or-fresh: a missing/corrupt/mismatching checkpoint is not
      // fatal — the search simply starts over (and re-creates the slots).
      std::string error;
      (void)durability->resume(core_, error);
    }
  }
  std::unique_ptr<util::ProgressReporter> reporter = make_reporter();
  CheckerResult result;
  if (options_.threads > 1) {
    result = run_parallel(core_, options_.threads, durability.get());
  } else {
    auto frontier = make_frontier(options_.frontier, options_.frontier_seed);
    result = core_.run_sequential(*frontier, cache_, durability.get());
  }
  finish_reporter(reporter.get(), result);
  return result;
}

CheckerResult Checker::random_walk(std::uint64_t seed, int walks,
                                   int max_steps) {
  std::unique_ptr<util::ProgressReporter> reporter = make_reporter();
  if (options_.threads > 1) {
    CheckerResult result = run_random_walk_portfolio(
        core_, options_.threads, seed, walks, max_steps);
    finish_reporter(reporter.get(), result);
    return result;
  }

  const auto start = SearchClock::now();
  CheckerResult result;
  util::SplitMix64 rng(seed);
  const util::Telemetry::Binding bind(telem_.get(), 0);
  util::WorkerTelemetry* const wt = util::Telemetry::current();
  if (telem_ != nullptr) telem_->set_base(0, 0, 0, 0);
  std::uint64_t steps_since_publish = 0;

  for (int w = 0; w < walks; ++w) {
    if (result.hit_limit == LimitReason::kTime) break;
    SystemState state = executor_.make_initial();
    std::shared_ptr<const PathNode> path;
    for (int step = 0; step < max_steps; ++step) {
      if (options_.time_limit_seconds > 0 &&
          seconds_since(start) >= options_.time_limit_seconds) {
        result.hit_limit = LimitReason::kTime;
        break;
      }
      auto ts = apply_strategy(options_.strategy, cfg_, state,
                               executor_.enabled(state, cache_));
      if (ts.empty()) {
        ++result.quiescent_states;
        if (wt != nullptr) wt->add_quiescent();
        std::vector<Violation> vs;
        executor_.at_quiescence(state, vs);
        for (Violation& v : vs) {
          result.violations.push_back(
              ViolationRecord{std::move(v), trace_of(path)});
        }
        break;
      }
      const Transition t = ts[static_cast<std::size_t>(
          rng.next_below(ts.size()))];
      if (wt != nullptr) {
        wt->record_expand(static_cast<std::uint32_t>(t.kind), t.a, t.aux);
      }
      std::vector<Violation> violations;
      executor_.apply(state, t, violations);
      ++result.transitions;
      if (wt != nullptr) {
        wt->add_transitions();
        if (++steps_since_publish >= 1024) {
          steps_since_publish = 0;
          core_.publish_gauges(0);
        }
      }
      path = std::make_shared<const PathNode>(PathNode{path, t});
      if (core_.remember(state)) {
        ++result.unique_states;
        if (wt != nullptr) wt->add_unique();
      } else {
        ++result.revisits;
        if (wt != nullptr) wt->add_revisits();
      }
      if (!violations.empty()) {
        for (Violation& v : violations) {
          result.violations.push_back(
              ViolationRecord{std::move(v), trace_of(path)});
        }
        break;
      }
    }
    if (options_.stop_at_first_violation && result.found_violation()) break;
  }

  result.seconds = seconds_since(start);
  result.discovery = cache_.stats();
  core_.publish_gauges(0);
  core_.finish_stats(result, nullptr);
  finish_reporter(reporter.get(), result);
  return result;
}

}  // namespace nicemc::mc
