#include "mc/checker.h"

#include <chrono>

#include "util/hash.h"

namespace nicemc::mc {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

bool Checker::remember_state(const SystemState& state,
                             CheckerResult& result) {
  if (options_.store_full_states) {
    util::Ser s;
    state.serialize(s, cfg_.canonical_flowtables);
    const auto bytes = s.bytes();
    std::string blob(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
    const auto [it, inserted] = explored_full_.insert(std::move(blob));
    if (inserted) result.store_bytes += it->size();
    return inserted;
  }
  const bool inserted =
      explored_hashes_.insert(state.hash(cfg_.canonical_flowtables)).second;
  if (inserted) result.store_bytes += sizeof(util::Hash128);
  return inserted;
}

CheckerResult Checker::run() {
  const auto start = Clock::now();
  CheckerResult result;

  SystemState initial = executor_.make_initial();
  remember_state(initial, result);
  result.unique_states = 1;

  std::vector<StackEntry> stack;
  {
    auto initial_sp =
        std::make_shared<const SystemState>(initial.clone());
    auto ts = apply_strategy(options_.strategy, cfg_, *initial_sp,
                             executor_.enabled(*initial_sp, cache_));
    if (ts.empty()) {
      ++result.quiescent_states;
      std::vector<Violation> vs;
      SystemState tmp = initial_sp->clone();
      executor_.at_quiescence(tmp, vs);
      for (Violation& v : vs) {
        result.violations.push_back(ViolationRecord{std::move(v), {}});
      }
    }
    for (Transition& t : ts) {
      stack.push_back(StackEntry{initial_sp, std::move(t), nullptr, 1});
    }
  }

  while (!stack.empty()) {
    if (result.transitions >= options_.max_transitions ||
        result.unique_states >= options_.max_unique_states) {
      result.seconds = seconds_since(start);
      result.discovery = cache_.stats();
      return result;  // hit a limit: not exhausted
    }
    if (options_.stop_at_first_violation && result.found_violation()) break;

    StackEntry entry = std::move(stack.back());
    stack.pop_back();

    SystemState next = entry.state->clone();
    std::vector<Violation> violations;
    executor_.apply(next, entry.transition, violations);
    ++result.transitions;

    auto node = std::make_shared<const PathNode>(
        PathNode{entry.path, entry.transition});

    if (!violations.empty()) {
      const auto trace = trace_of(node);
      for (Violation& v : violations) {
        result.violations.push_back(ViolationRecord{std::move(v), trace});
      }
      if (options_.stop_at_first_violation) break;
      continue;  // do not expand beyond an erroneous state
    }

    if (!remember_state(next, result)) {
      ++result.revisits;
      continue;
    }
    ++result.unique_states;

    if (entry.depth >= options_.max_depth) continue;

    auto ts = apply_strategy(options_.strategy, cfg_, next,
                             executor_.enabled(next, cache_));
    if (ts.empty()) {
      ++result.quiescent_states;
      std::vector<Violation> vs;
      executor_.at_quiescence(next, vs);
      if (!vs.empty()) {
        const auto trace = trace_of(node);
        for (Violation& v : vs) {
          result.violations.push_back(ViolationRecord{std::move(v), trace});
        }
        if (options_.stop_at_first_violation) break;
      }
      continue;
    }
    auto next_sp = std::make_shared<const SystemState>(std::move(next));
    for (Transition& t : ts) {
      stack.push_back(
          StackEntry{next_sp, std::move(t), node, entry.depth + 1});
    }
  }

  // "Exhausted" = the bounded state space was fully explored. In
  // collect-all mode a violation does not negate exhaustion; in
  // stop-at-first mode it does (the search was cut short).
  result.exhausted =
      stack.empty() &&
      !(options_.stop_at_first_violation && result.found_violation());
  result.seconds = seconds_since(start);
  result.discovery = cache_.stats();
  return result;
}

CheckerResult Checker::random_walk(std::uint64_t seed, int walks,
                                   int max_steps) {
  const auto start = Clock::now();
  CheckerResult result;
  util::SplitMix64 rng(seed);

  for (int w = 0; w < walks; ++w) {
    SystemState state = executor_.make_initial();
    std::shared_ptr<const PathNode> path;
    for (int step = 0; step < max_steps; ++step) {
      auto ts = apply_strategy(options_.strategy, cfg_, state,
                               executor_.enabled(state, cache_));
      if (ts.empty()) {
        ++result.quiescent_states;
        std::vector<Violation> vs;
        executor_.at_quiescence(state, vs);
        for (Violation& v : vs) {
          result.violations.push_back(
              ViolationRecord{std::move(v), trace_of(path)});
        }
        break;
      }
      const Transition t = ts[static_cast<std::size_t>(
          rng.next_below(ts.size()))];
      std::vector<Violation> violations;
      executor_.apply(state, t, violations);
      ++result.transitions;
      path = std::make_shared<const PathNode>(PathNode{path, t});
      if (remember_state(state, result)) ++result.unique_states;
      if (!violations.empty()) {
        for (Violation& v : violations) {
          result.violations.push_back(
              ViolationRecord{std::move(v), trace_of(path)});
        }
        break;
      }
    }
    if (options_.stop_at_first_violation && result.found_violation()) break;
  }

  result.seconds = seconds_since(start);
  result.discovery = cache_.stats();
  return result;
}

}  // namespace nicemc::mc
