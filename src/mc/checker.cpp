#include "mc/checker.h"

#include <memory>
#include <string>

#include "mc/checkpoint.h"
#include "util/hash.h"
#include "util/resource.h"

namespace nicemc::mc {

using detail::SearchClock;
using detail::seconds_since;

CheckerResult Checker::run() {
  std::unique_ptr<Durability> durability;
  if (!options_.checkpoint_path.empty() ||
      options_.memory_budget_bytes > 0 || options_.handle_signals) {
    durability = std::make_unique<Durability>(
        options_, search_config_fingerprint(cfg_, options_, executor_),
        fp_memo_.get(), disc_memo_.get());
    if (options_.resume) {
      // Resume-or-fresh: a missing/corrupt/mismatching checkpoint is not
      // fatal — the search simply starts over (and re-creates the slots).
      std::string error;
      (void)durability->resume(core_, error);
    }
  }
  if (options_.threads > 1) {
    return run_parallel(core_, options_.threads, durability.get());
  }
  auto frontier = make_frontier(options_.frontier, options_.frontier_seed);
  return core_.run_sequential(*frontier, cache_, durability.get());
}

CheckerResult Checker::random_walk(std::uint64_t seed, int walks,
                                   int max_steps) {
  if (options_.threads > 1) {
    return run_random_walk_portfolio(core_, options_.threads, seed, walks,
                                     max_steps);
  }

  const auto start = SearchClock::now();
  CheckerResult result;
  util::SplitMix64 rng(seed);

  for (int w = 0; w < walks; ++w) {
    if (result.hit_limit == LimitReason::kTime) break;
    SystemState state = executor_.make_initial();
    std::shared_ptr<const PathNode> path;
    for (int step = 0; step < max_steps; ++step) {
      if (options_.time_limit_seconds > 0 &&
          seconds_since(start) >= options_.time_limit_seconds) {
        result.hit_limit = LimitReason::kTime;
        break;
      }
      auto ts = apply_strategy(options_.strategy, cfg_, state,
                               executor_.enabled(state, cache_));
      if (ts.empty()) {
        ++result.quiescent_states;
        std::vector<Violation> vs;
        executor_.at_quiescence(state, vs);
        for (Violation& v : vs) {
          result.violations.push_back(
              ViolationRecord{std::move(v), trace_of(path)});
        }
        break;
      }
      const Transition t = ts[static_cast<std::size_t>(
          rng.next_below(ts.size()))];
      std::vector<Violation> violations;
      executor_.apply(state, t, violations);
      ++result.transitions;
      path = std::make_shared<const PathNode>(PathNode{path, t});
      if (core_.remember(state)) {
        ++result.unique_states;
      } else {
        ++result.revisits;
      }
      if (!violations.empty()) {
        for (Violation& v : violations) {
          result.violations.push_back(
              ViolationRecord{std::move(v), trace_of(path)});
        }
        break;
      }
    }
    if (options_.stop_at_first_violation && result.found_violation()) break;
  }

  result.seconds = seconds_since(start);
  result.discovery = cache_.stats();
  core_.fill_store_stats(result);
  result.peak_rss_bytes = util::peak_rss_bytes();
  return result;
}

}  // namespace nicemc::mc
