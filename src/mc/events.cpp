#include "mc/events.h"

namespace nicemc::mc {

std::string brief(const Event& e) {
  return std::visit(
      [](const auto& v) -> std::string {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, EvPacketSent>) {
          return "sent host=" + std::to_string(v.host) + " " + v.pkt.brief();
        } else if constexpr (std::is_same_v<T, EvCtrlPacketInjected>) {
          return "ctrl_inject sw=" + std::to_string(v.sw) + " " +
                 v.pkt.brief();
        } else if constexpr (std::is_same_v<T, EvPacketProcessed>) {
          std::string s = "processed sw=" + std::to_string(v.sw) +
                          " in=" + std::to_string(v.in_port) +
                          " copies=" + std::to_string(v.copies_out);
          if (v.to_controller) s += " ->ctrl";
          if (v.dropped_by_rule) s += " drop_rule";
          if (v.dropped_buffer_full) s += " drop_full";
          if (v.dropped_no_ctrl) s += " drop_no_ctrl";
          if (v.revisited) s += " LOOP";
          if (v.from_buffer) s += " from_buf";
          return s;
        } else if constexpr (std::is_same_v<T, EvPacketDeadPort>) {
          return "dead_port sw=" + std::to_string(v.sw) + " port=" +
                 std::to_string(v.port) + " " + v.pkt.brief();
        } else if constexpr (std::is_same_v<T, EvPacketDelivered>) {
          return "delivered host=" + std::to_string(v.host) + " " +
                 v.pkt.brief();
        } else if constexpr (std::is_same_v<T, EvPacketIn>) {
          return "packet_in sw=" + std::to_string(v.sw) + " " + v.pkt.brief();
        } else if constexpr (std::is_same_v<T, EvPacketInHandled>) {
          return "packet_in_handled sw=" + std::to_string(v.sw) +
                 " installs=" + std::to_string(v.installs.size()) +
                 (v.sent_packet_out ? " +packet_out" : " (no packet_out)");
        } else if constexpr (std::is_same_v<T, EvRuleInstalled>) {
          return "installed sw=" + std::to_string(v.sw) + " " +
                 v.rule.brief();
        } else if constexpr (std::is_same_v<T, EvRuleRemoved>) {
          return "removed sw=" + std::to_string(v.sw) + " n=" +
                 std::to_string(v.count) + " " + v.match.brief();
        } else if constexpr (std::is_same_v<T, EvRuleExpired>) {
          return "expired sw=" + std::to_string(v.sw) + " " + v.rule.brief();
        } else if constexpr (std::is_same_v<T, EvChannelDrop>) {
          return "chan_drop sw=" + std::to_string(v.sw) + " port=" +
                 std::to_string(v.port);
        } else if constexpr (std::is_same_v<T, EvChannelDup>) {
          return "chan_dup sw=" + std::to_string(v.sw) + " port=" +
                 std::to_string(v.port);
        } else if constexpr (std::is_same_v<T, EvStatsHandled>) {
          return "stats_handled sw=" + std::to_string(v.sw);
        } else if constexpr (std::is_same_v<T, EvLinkDown>) {
          return "link_down link=" + std::to_string(v.link) + " sw" +
                 std::to_string(v.sw_a) + ":" + std::to_string(v.port_a) +
                 "<->sw" + std::to_string(v.sw_b) + ":" +
                 std::to_string(v.port_b);
        } else if constexpr (std::is_same_v<T, EvLinkUp>) {
          return "link_up link=" + std::to_string(v.link) + " sw" +
                 std::to_string(v.sw_a) + ":" + std::to_string(v.port_a) +
                 "<->sw" + std::to_string(v.sw_b) + ":" +
                 std::to_string(v.port_b);
        } else if constexpr (std::is_same_v<T, EvCtrlChannelDown>) {
          return "ctrl_channel_down sw=" + std::to_string(v.sw) + " lost=" +
                 std::to_string(v.lost_to_switch) + "+" +
                 std::to_string(v.lost_to_ctrl);
        } else if constexpr (std::is_same_v<T, EvCtrlChannelUp>) {
          return "ctrl_channel_up sw=" + std::to_string(v.sw);
        } else if constexpr (std::is_same_v<T, EvSwitchRestart>) {
          return "switch_restart sw=" + std::to_string(v.sw) +
                 " lost_rules=" + std::to_string(v.lost_rules) +
                 " lost_buffered=" + std::to_string(v.lost_buffered);
        } else if constexpr (std::is_same_v<T, EvPortStatusHandled>) {
          return "port_status_handled sw=" + std::to_string(v.sw) +
                 " port=" + std::to_string(v.port) +
                 (v.up ? " up" : " down");
        } else {
          return "host_moved host=" + std::to_string(v.host) + " -> sw=" +
                 std::to_string(v.to_sw) + ":" + std::to_string(v.to_port);
        }
      },
      e);
}

}  // namespace nicemc::mc
