#include "mc/events.h"

namespace nicemc::mc {

std::string brief(const Event& e) {
  return std::visit(
      [](const auto& v) -> std::string {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, EvPacketSent>) {
          return "sent host=" + std::to_string(v.host) + " " + v.pkt.brief();
        } else if constexpr (std::is_same_v<T, EvCtrlPacketInjected>) {
          return "ctrl_inject sw=" + std::to_string(v.sw) + " " +
                 v.pkt.brief();
        } else if constexpr (std::is_same_v<T, EvPacketProcessed>) {
          std::string s = "processed sw=" + std::to_string(v.sw) +
                          " in=" + std::to_string(v.in_port) +
                          " copies=" + std::to_string(v.copies_out);
          if (v.to_controller) s += " ->ctrl";
          if (v.dropped_by_rule) s += " drop_rule";
          if (v.dropped_buffer_full) s += " drop_full";
          if (v.revisited) s += " LOOP";
          if (v.from_buffer) s += " from_buf";
          return s;
        } else if constexpr (std::is_same_v<T, EvPacketDeadPort>) {
          return "dead_port sw=" + std::to_string(v.sw) + " port=" +
                 std::to_string(v.port) + " " + v.pkt.brief();
        } else if constexpr (std::is_same_v<T, EvPacketDelivered>) {
          return "delivered host=" + std::to_string(v.host) + " " +
                 v.pkt.brief();
        } else if constexpr (std::is_same_v<T, EvPacketIn>) {
          return "packet_in sw=" + std::to_string(v.sw) + " " + v.pkt.brief();
        } else if constexpr (std::is_same_v<T, EvPacketInHandled>) {
          return "packet_in_handled sw=" + std::to_string(v.sw) +
                 " installs=" + std::to_string(v.installs.size()) +
                 (v.sent_packet_out ? " +packet_out" : " (no packet_out)");
        } else if constexpr (std::is_same_v<T, EvRuleInstalled>) {
          return "installed sw=" + std::to_string(v.sw) + " " +
                 v.rule.brief();
        } else if constexpr (std::is_same_v<T, EvRuleRemoved>) {
          return "removed sw=" + std::to_string(v.sw) + " n=" +
                 std::to_string(v.count) + " " + v.match.brief();
        } else if constexpr (std::is_same_v<T, EvRuleExpired>) {
          return "expired sw=" + std::to_string(v.sw) + " " + v.rule.brief();
        } else if constexpr (std::is_same_v<T, EvChannelDrop>) {
          return "chan_drop sw=" + std::to_string(v.sw) + " port=" +
                 std::to_string(v.port);
        } else if constexpr (std::is_same_v<T, EvStatsHandled>) {
          return "stats_handled sw=" + std::to_string(v.sw);
        } else {
          return "host_moved host=" + std::to_string(v.host) + " -> sw=" +
                 std::to_string(v.to_sw) + ":" + std::to_string(v.to_port);
        }
      },
      e);
}

}  // namespace nicemc::mc
