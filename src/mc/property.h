// Correctness-property interface (paper Section 5).
//
// A Property is a stateless monitor definition; its per-execution local
// state (PropState) is cloned and hashed with the system state, so property
// bookkeeping participates in state matching exactly like any other
// component. NICE invokes the monitor after every transition with the
// events that transition generated, and once more when an execution path
// quiesces (for liveness-flavoured checks such as NoForgottenPackets).
#ifndef NICE_MC_PROPERTY_H
#define NICE_MC_PROPERTY_H

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mc/events.h"
#include "util/ser.h"

namespace nicemc::mc {

struct SystemState;  // defined in mc/system.h

class PropState {
 public:
  virtual ~PropState() = default;
  [[nodiscard]] virtual std::unique_ptr<PropState> clone() const = 0;
  virtual void serialize(util::Ser& s) const = 0;
};

/// For properties that need no local state.
class EmptyPropState final : public PropState {
 public:
  [[nodiscard]] std::unique_ptr<PropState> clone() const override {
    return std::make_unique<EmptyPropState>();
  }
  void serialize(util::Ser& s) const override { s.put_tag('0'); }
};

/// Value-semantic holder for one polymorphic PropState: copying deep-clones
/// via PropState::clone(), so property states can live in copy-on-write
/// component snapshots like every plain-struct component.
struct PropSlot {
  std::unique_ptr<PropState> state;

  PropSlot() = default;
  explicit PropSlot(std::unique_ptr<PropState> s) : state(std::move(s)) {}
  PropSlot(const PropSlot& o) : state(o.state ? o.state->clone() : nullptr) {}
  PropSlot& operator=(const PropSlot& o) {
    if (this != &o) state = o.state ? o.state->clone() : nullptr;
    return *this;
  }
  PropSlot(PropSlot&&) noexcept = default;
  PropSlot& operator=(PropSlot&&) noexcept = default;

  void serialize(util::Ser& s) const { state->serialize(s); }
};

struct Violation {
  std::string property;
  std::string message;
};

class Property {
 public:
  virtual ~Property() = default;

  /// How a monitor couples otherwise-independent transitions, for the
  /// partial-order-reduction footprint layer (mc/por/footprint.h):
  ///   * kPacketKeyed — the monitor keeps state keyed by packet identity
  ///     (uid / L2 flow / five-tuple), so transitions touching packets of
  ///     the same identity must stay ordered (the conservative default);
  ///   * kEventLocal  — violations depend only on the triggering event
  ///     batch (or on quiescent-state predicates), never on monitor state
  ///     accumulated across transitions: the monitor adds no conflicts.
  enum class MonitorDomain : std::uint8_t { kEventLocal, kPacketKeyed };

  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual MonitorDomain monitor_domain() const {
    return MonitorDomain::kPacketKeyed;
  }
  [[nodiscard]] virtual std::unique_ptr<PropState> make_state() const {
    return std::make_unique<EmptyPropState>();
  }

  /// Observe the events of one executed transition against the resulting
  /// state; append violations if any.
  virtual void on_events(PropState& ps, std::span<const Event> events,
                         const SystemState& state,
                         std::vector<Violation>& out) const = 0;

  /// Called when an execution path reaches a state with no enabled
  /// transitions ("end of system execution").
  virtual void at_quiescence(PropState& ps, const SystemState& state,
                             std::vector<Violation>& out) const {
    (void)ps;
    (void)state;
    (void)out;
  }
};

using PropertyList = std::vector<std::unique_ptr<Property>>;

/// Any monitor whose bookkeeping is keyed by packet identity? Gates the
/// reduction footprint layer's packet conflict keys (mc/por/footprint.h).
[[nodiscard]] inline bool packet_keyed(const PropertyList& props) {
  for (const auto& p : props) {
    if (p->monitor_domain() == Property::MonitorDomain::kPacketKeyed) {
      return true;
    }
  }
  return false;
}

}  // namespace nicemc::mc

#endif  // NICE_MC_PROPERTY_H
