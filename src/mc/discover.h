// The discover_packets and discover_stats transitions of Figure 5.
//
// discover_packets(client): symbolically execute the packet_in handler from
// the *current concrete controller state* and the client's location
// context; each feasible handler path yields one equivalence class of
// packets, from which one representative is instantiated. Results are memo-
// ized per (client, controller-state hash) — the paper's
// `client.packets[state(ctrl)]` map — so revisiting the same controller
// state never re-runs symbolic execution.
//
// discover_stats(switch): same idea for the statistics handler, with one
// symbolic integer per port (Section 3.3).
#ifndef NICE_MC_DISCOVER_H
#define NICE_MC_DISCOVER_H

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "mc/system.h"
#include "sym/sympacket.h"
#include "util/collapse.h"
#include "util/hash.h"
#include "util/memo.h"

namespace nicemc::mc {

/// Representative per-port tx_bytes values for one stats-handler path.
using StatsValues = std::vector<std::pair<of::PortId, std::uint64_t>>;

struct DiscoveryStats {
  std::uint64_t packet_discoveries{0};
  std::uint64_t stats_discoveries{0};
  std::uint64_t handler_runs{0};
  std::uint64_t solver_queries{0};
  std::uint64_t packets_found{0};
};

/// Accumulate `from` into `into` — used by the parallel driver (per-worker
/// caches) and by checkpoint resume (counters carried across runs).
inline void add_discovery_stats(DiscoveryStats& into,
                                const DiscoveryStats& from) {
  into.packet_discoveries += from.packet_discoveries;
  into.stats_discoveries += from.stats_discoveries;
  into.handler_runs += from.handler_runs;
  into.solver_queries += from.solver_queries;
  into.packets_found += from.packets_found;
}

/// Per-run (and, in the parallel driver, per-worker) front cache over
/// discovery. The Hash128 the caller keys with must cover *every* input
/// the discovery reads beyond the id — Executor::enabled folds the
/// controller-state hash with the host's location (packets) or the
/// per-port tx_bytes seeds (stats). An under-keyed entry would alias
/// distinct states and make the cached representatives depend on visit
/// order, which breaks checkpoint/resume count-identity.
class DiscoveryCache {
 public:
  using PacketKey = std::pair<of::HostId, util::Hash128>;
  using StatsKey = std::pair<of::SwitchId, util::Hash128>;

  [[nodiscard]] const std::vector<sym::PacketFields>* find_packets(
      of::HostId host, util::Hash128 ctrl_hash) const;
  [[nodiscard]] const std::vector<StatsValues>* find_stats(
      of::SwitchId sw, util::Hash128 ctrl_hash) const;

  void store_packets(of::HostId host, util::Hash128 ctrl_hash,
                     std::vector<sym::PacketFields> packets);
  void store_stats(of::SwitchId sw, util::Hash128 ctrl_hash,
                   std::vector<StatsValues> values);

  [[nodiscard]] DiscoveryStats& stats() noexcept { return stats_; }
  [[nodiscard]] const DiscoveryStats& stats() const noexcept {
    return stats_;
  }

 private:
  std::map<PacketKey, std::vector<sym::PacketFields>> packets_;
  std::map<StatsKey, std::vector<StatsValues>> stats_values_;
  DiscoveryStats stats_;
};

/// Search-wide memo of discovery results, shared by all workers — the
/// cross-state "relevant packets" index the paper recomputes from scratch
/// per controller state (client.packets[state(ctrl)], Figure 5).
///
/// discover_packets is a pure function of (the client's <switch, port>
/// location, the controller *application* state, the fixed config),
/// discover_stats of (the switch's per-port tx_bytes seeds, the
/// application state, the config). The application state is keyed by its
/// interned projection id in kCollapsed mode (SystemState::app_state_id —
/// id equality ⇔ app-bytes equality, collision-proof) and by its memoized
/// projection hash otherwise (SystemState::ctrl_hash — already computed
/// by every enabled() call, at the hash-store's own negligible collision
/// risk); everything else by its exact bytes.
///
/// The per-worker DiscoveryCache stays in front of this: Executor::enabled
/// consults it first and stores into it always, so sequential searches
/// behave bit-identically with the memo on or off; the shared memo only
/// short-circuits the symbolic run on a local miss.
class DiscoveryMemo {
 public:
  /// `ids` is the seen-set's interning table in kCollapsed mode, nullptr
  /// otherwise (memoized-hash keys).
  DiscoveryMemo(util::CollapseTable* ids, std::size_t shards,
                std::uint64_t byte_budget)
      : ids_(ids),
        packets_(shards, byte_budget / 2),
        stats_(shards, byte_budget - byte_budget / 2) {}

  [[nodiscard]] std::shared_ptr<const std::vector<sym::PacketFields>>
  find_packets(const SystemState& state, of::HostId host);
  void store_packets(const SystemState& state, of::HostId host,
                     const std::vector<sym::PacketFields>& packets);

  [[nodiscard]] std::shared_ptr<const std::vector<StatsValues>> find_stats(
      const SystemState& state, of::SwitchId sw);
  void store_stats(const SystemState& state, of::SwitchId sw,
                   const std::vector<StatsValues>& values);

  [[nodiscard]] util::MemoCore::Stats packet_stats() const {
    return packets_.stats();
  }
  [[nodiscard]] util::MemoCore::Stats stats_stats() const {
    return stats_.stats();
  }

  /// Memory-watchdog hook: lower the combined byte budget and evict.
  void shrink_to(std::uint64_t new_budget) {
    packets_.shrink_to(new_budget / 2);
    stats_.shrink_to(new_budget - new_budget / 2);
  }
  [[nodiscard]] std::uint64_t byte_budget() const noexcept {
    return packets_.byte_budget() + stats_.byte_budget();
  }

 private:
  void put_app_id(util::Ser& key, const SystemState& state) const;
  void packets_key(util::Ser& key, const SystemState& state,
                   of::HostId host) const;
  void stats_key(util::Ser& key, const SystemState& state,
                 of::SwitchId sw) const;

  util::CollapseTable* ids_;
  util::MemoTable<std::vector<sym::PacketFields>> packets_;
  util::MemoTable<std::vector<StatsValues>> stats_;
};

/// Run symbolic execution of packet_in for `host` at its current location.
/// Returns one concrete representative packet per feasible handler path.
std::vector<sym::PacketFields> discover_packets(const SystemConfig& cfg,
                                                const SystemState& state,
                                                of::HostId host,
                                                DiscoveryStats& stats);

/// Run symbolic execution of the stats handler for `sw`.
std::vector<StatsValues> discover_stats(const SystemConfig& cfg,
                                        const SystemState& state,
                                        of::SwitchId sw,
                                        DiscoveryStats& stats);

}  // namespace nicemc::mc

#endif  // NICE_MC_DISCOVER_H
