// The discover_packets and discover_stats transitions of Figure 5.
//
// discover_packets(client): symbolically execute the packet_in handler from
// the *current concrete controller state* and the client's location
// context; each feasible handler path yields one equivalence class of
// packets, from which one representative is instantiated. Results are memo-
// ized per (client, controller-state hash) — the paper's
// `client.packets[state(ctrl)]` map — so revisiting the same controller
// state never re-runs symbolic execution.
//
// discover_stats(switch): same idea for the statistics handler, with one
// symbolic integer per port (Section 3.3).
#ifndef NICE_MC_DISCOVER_H
#define NICE_MC_DISCOVER_H

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "mc/system.h"
#include "sym/sympacket.h"
#include "util/hash.h"

namespace nicemc::mc {

/// Representative per-port tx_bytes values for one stats-handler path.
using StatsValues = std::vector<std::pair<of::PortId, std::uint64_t>>;

struct DiscoveryStats {
  std::uint64_t packet_discoveries{0};
  std::uint64_t stats_discoveries{0};
  std::uint64_t handler_runs{0};
  std::uint64_t solver_queries{0};
  std::uint64_t packets_found{0};
};

class DiscoveryCache {
 public:
  using PacketKey = std::pair<of::HostId, util::Hash128>;
  using StatsKey = std::pair<of::SwitchId, util::Hash128>;

  [[nodiscard]] const std::vector<sym::PacketFields>* find_packets(
      of::HostId host, util::Hash128 ctrl_hash) const;
  [[nodiscard]] const std::vector<StatsValues>* find_stats(
      of::SwitchId sw, util::Hash128 ctrl_hash) const;

  void store_packets(of::HostId host, util::Hash128 ctrl_hash,
                     std::vector<sym::PacketFields> packets);
  void store_stats(of::SwitchId sw, util::Hash128 ctrl_hash,
                   std::vector<StatsValues> values);

  [[nodiscard]] DiscoveryStats& stats() noexcept { return stats_; }
  [[nodiscard]] const DiscoveryStats& stats() const noexcept {
    return stats_;
  }

 private:
  std::map<PacketKey, std::vector<sym::PacketFields>> packets_;
  std::map<StatsKey, std::vector<StatsValues>> stats_values_;
  DiscoveryStats stats_;
};

/// Run symbolic execution of packet_in for `host` at its current location.
/// Returns one concrete representative packet per feasible handler path.
std::vector<sym::PacketFields> discover_packets(const SystemConfig& cfg,
                                                const SystemState& state,
                                                of::HostId host,
                                                DiscoveryStats& stats);

/// Run symbolic execution of the stats handler for `sw`.
std::vector<StatsValues> discover_stats(const SystemConfig& cfg,
                                        const SystemState& state,
                                        of::SwitchId sw,
                                        DiscoveryStats& stats);

}  // namespace nicemc::mc

#endif  // NICE_MC_DISCOVER_H
