#include "mc/transition.h"

#include "util/strings.h"

namespace nicemc::mc {

const char* tkind_name(TKind kind) noexcept {
  switch (kind) {
    case TKind::kHostSendScript: return "host_send_script";
    case TKind::kHostSendDiscovered: return "host_send_discovered";
    case TKind::kHostSendDup: return "host_send_dup";
    case TKind::kHostSendReply: return "host_send_reply";
    case TKind::kHostRecv: return "host_recv";
    case TKind::kHostMove: return "host_move";
    case TKind::kSwitchProcessPkt: return "switch_process_pkt";
    case TKind::kSwitchProcessOf: return "switch_process_of";
    case TKind::kCtrlDispatch: return "ctrl_dispatch";
    case TKind::kCtrlApplyCommand: return "ctrl_apply_command";
    case TKind::kCtrlExternal: return "ctrl_external";
    case TKind::kCtrlRequestStats: return "ctrl_request_stats";
    case TKind::kCtrlProcessStats: return "ctrl_process_stats";
    case TKind::kRuleExpire: return "rule_expire";
    case TKind::kChannelDropHead: return "channel_drop_head";
    case TKind::kChannelDupHead: return "channel_dup_head";
    case TKind::kDiscoverPackets: return "discover_packets";
    case TKind::kDiscoverStats: return "discover_stats";
    case TKind::kLinkDown: return "link_down";
    case TKind::kLinkUp: return "link_up";
    case TKind::kCtrlChannelDown: return "ctrl_channel_down";
    case TKind::kCtrlChannelUp: return "ctrl_channel_up";
    case TKind::kSwitchRestart: return "switch_restart";
  }
  return "?";
}

std::string Transition::label() const {
  switch (kind) {
    case TKind::kHostSendScript:
      return "host" + std::to_string(a) + ".send[script]";
    case TKind::kHostSendDiscovered:
      return "host" + std::to_string(a) + ".send(dst=" +
             util::mac_to_string(fields.eth_dst) +
             " src=" + util::mac_to_string(fields.eth_src) + ")";
    case TKind::kHostSendDup:
      return "host" + std::to_string(a) + ".send[dup]";
    case TKind::kHostSendReply:
      return "host" + std::to_string(a) + ".send_reply";
    case TKind::kHostRecv:
      return "host" + std::to_string(a) + ".receive";
    case TKind::kHostMove:
      return "host" + std::to_string(a) + ".move[" + std::to_string(aux) +
             "]";
    case TKind::kSwitchProcessPkt:
      return "sw" + std::to_string(a) + ".process_pkt";
    case TKind::kSwitchProcessOf:
      return "sw" + std::to_string(a) + ".process_of";
    case TKind::kCtrlDispatch:
      return "ctrl.dispatch(sw" + std::to_string(a) + ")";
    case TKind::kCtrlApplyCommand:
      return "ctrl.apply_command";
    case TKind::kCtrlExternal:
      return "ctrl.external[" + std::to_string(aux) + "]";
    case TKind::kCtrlRequestStats:
      return "ctrl.request_stats(sw" + std::to_string(a) + ")";
    case TKind::kCtrlProcessStats:
      return "ctrl.process_stats(sw" + std::to_string(a) + ")";
    case TKind::kRuleExpire:
      return "sw" + std::to_string(a) + ".expire_rule[" +
             std::to_string(aux) + "]";
    case TKind::kChannelDropHead:
      return "sw" + std::to_string(a) + ".drop_head(port=" +
             std::to_string(aux) + ")";
    case TKind::kChannelDupHead:
      return "sw" + std::to_string(a) + ".dup_head(port=" +
             std::to_string(aux) + ")";
    case TKind::kDiscoverPackets:
      return "host" + std::to_string(a) + ".discover_packets";
    case TKind::kDiscoverStats:
      return "ctrl.discover_stats(sw" + std::to_string(a) + ")";
    case TKind::kLinkDown:
      return "link" + std::to_string(a) + ".down";
    case TKind::kLinkUp:
      return "link" + std::to_string(a) + ".up";
    case TKind::kCtrlChannelDown:
      return "sw" + std::to_string(a) + ".ctrl_channel_down";
    case TKind::kCtrlChannelUp:
      return "sw" + std::to_string(a) + ".ctrl_channel_up";
    case TKind::kSwitchRestart:
      return "sw" + std::to_string(a) + ".restart";
  }
  return "?";
}

void Transition::serialize(util::Ser& s) const {
  s.put_u8(static_cast<std::uint8_t>(kind));
  s.put_u32(a);
  s.put_u32(aux);
  s.put_u64(fields.eth_src);
  s.put_u64(fields.eth_dst);
  s.put_u64(fields.eth_type);
  s.put_u64(fields.ip_src);
  s.put_u64(fields.ip_dst);
  s.put_u64(fields.ip_proto);
  s.put_u64(fields.tp_src);
  s.put_u64(fields.tp_dst);
  s.put_u64(fields.tcp_flags);
  s.put_u32(static_cast<std::uint32_t>(stats.size()));
  for (const auto& [port, bytes] : stats) {
    s.put_u32(port);
    s.put_u64(bytes);
  }
}

Transition Transition::deserialize(util::Des& d) {
  Transition t;
  const std::uint8_t kind = d.get_u8();
  if (kind > static_cast<std::uint8_t>(TKind::kSwitchRestart)) d.fail();
  if (!d.ok()) return t;
  t.kind = static_cast<TKind>(kind);
  t.a = d.get_u32();
  t.aux = d.get_u32();
  t.fields.eth_src = d.get_u64();
  t.fields.eth_dst = d.get_u64();
  t.fields.eth_type = d.get_u64();
  t.fields.ip_src = d.get_u64();
  t.fields.ip_dst = d.get_u64();
  t.fields.ip_proto = d.get_u64();
  t.fields.tp_src = d.get_u64();
  t.fields.tp_dst = d.get_u64();
  t.fields.tcp_flags = d.get_u64();
  const std::uint32_t n = d.get_u32();
  if (n > d.remaining() / (sizeof(std::uint32_t) + sizeof(std::uint64_t))) {
    d.fail();
  }
  if (!d.ok()) return t;
  t.stats.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const of::PortId port = d.get_u32();
    const std::uint64_t bytes = d.get_u64();
    t.stats.emplace_back(port, bytes);
  }
  return t;
}

}  // namespace nicemc::mc
