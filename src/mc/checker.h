// The model checker: the state-space search of Figure 5.
//
// Depth-first search over system states with hash-based state matching,
// strategy-filtered transition enumeration, on-demand symbolic discovery,
// property checking after every transition, and counterexample traces.
// Also provides the random-walk "simulator" mode mentioned in Section 1.3.
#ifndef NICE_MC_CHECKER_H
#define NICE_MC_CHECKER_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "mc/discover.h"
#include "mc/execute.h"
#include "mc/property.h"
#include "mc/strategy.h"
#include "mc/system.h"
#include "mc/trace.h"
#include "util/hash.h"

namespace nicemc::mc {

struct CheckerOptions {
  Strategy strategy{Strategy::kPktSeqOnly};
  std::uint64_t max_transitions{~0ULL};
  std::uint64_t max_unique_states{~0ULL};
  std::size_t max_depth{100000};
  bool stop_at_first_violation{true};
  /// SPIN-like baseline: store full serialized states in the explored set
  /// instead of 128-bit hashes (measures the memory trade-off of
  /// Section 6's "trading computation for memory").
  bool store_full_states{false};
};

struct ViolationRecord {
  Violation violation;
  std::vector<Transition> trace;
};

struct CheckerResult {
  std::uint64_t transitions{0};
  std::uint64_t unique_states{0};
  std::uint64_t revisits{0};
  std::uint64_t quiescent_states{0};
  double seconds{0.0};
  /// True when the search exhausted the (bounded) state space rather than
  /// stopping at a violation or a limit.
  bool exhausted{false};
  /// Bytes held by the explored-state store (full-state mode measures the
  /// serialized states; hash mode counts 16 bytes per state).
  std::uint64_t store_bytes{0};
  std::vector<ViolationRecord> violations;
  DiscoveryStats discovery;

  [[nodiscard]] bool found_violation() const { return !violations.empty(); }
};

class Checker {
 public:
  Checker(const SystemConfig& cfg, CheckerOptions options,
          const PropertyList& props)
      : cfg_(cfg), options_(options), props_(props), executor_(cfg, props) {}

  /// Exhaustive DFS (bounded by the options).
  CheckerResult run();

  /// Random walks from the initial state (simulator mode): each walk picks
  /// uniformly among strategy-filtered enabled transitions until
  /// quiescence or `max_steps`.
  CheckerResult random_walk(std::uint64_t seed, int walks, int max_steps);

  [[nodiscard]] const Executor& executor() const noexcept {
    return executor_;
  }

 private:
  struct StackEntry {
    std::shared_ptr<const SystemState> state;
    Transition transition;
    std::shared_ptr<const PathNode> path;
    std::size_t depth{0};
  };

  /// Returns true when the state was not seen before.
  bool remember_state(const SystemState& state, CheckerResult& result);

  const SystemConfig& cfg_;
  CheckerOptions options_;
  const PropertyList& props_;
  Executor executor_;
  DiscoveryCache cache_;
  std::unordered_set<util::Hash128> explored_hashes_;
  std::unordered_set<std::string> explored_full_;
};

}  // namespace nicemc::mc

#endif  // NICE_MC_CHECKER_H
