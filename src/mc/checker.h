// The model checker: the state-space search of Figure 5.
//
// Checker is the user-facing façade over the search-engine subsystem:
//   * mc/search_core.h — options/result types and the per-transition
//     expand step (clone → apply → check → remember → enumerate);
//   * mc/frontier.h    — pluggable exploration orders (DFS / BFS / random)
//     for the single-threaded search;
//   * mc/parallel.h    — the multi-threaded shared-deque driver and the
//     random-walk portfolio (CheckerOptions::threads > 1);
//   * util/seen_set.h  — the lock-striped explored-state store.
//
// With default options (1 thread, DFS frontier) the search is bit-for-bit
// the original depth-first checker. Also provides the random-walk
// "simulator" mode mentioned in Section 1.3.
#ifndef NICE_MC_CHECKER_H
#define NICE_MC_CHECKER_H

#include <cstdint>
#include <memory>

#include "mc/discover.h"
#include "mc/por/reduction.h"
#include "mc/execute.h"
#include "mc/frontier.h"
#include "mc/parallel.h"
#include "mc/property.h"
#include "mc/search_core.h"
#include "mc/strategy.h"
#include "mc/system.h"
#include "mc/trace.h"
#include "util/collapse.h"
#include "util/seen_set.h"

namespace nicemc::mc {

class Checker {
 public:
  Checker(const SystemConfig& cfg, CheckerOptions options,
          const PropertyList& props)
      : cfg_(cfg),
        options_(options),
        props_(props),
        executor_(cfg, props),
        seen_(options.state_store, shard_count(options)),
        collapse_(options.state_store ==
                          util::ShardedSeenSet::Mode::kCollapsed
                      ? std::make_unique<util::CollapseTable>(
                            shard_count(options))
                      : nullptr),
        // Symmetry forces the reducer off: POR's sleep/wakeup bookkeeping
        // assumes key-equal states enable identically *labelled*
        // transitions, which merging permutation-equivalent states breaks.
        reducer_(options.reduction == Reduction::kNone || options.symmetry
                     ? nullptr
                     : std::make_unique<por::Reducer>(options.reduction,
                                                      packet_keyed(props),
                                                      shard_count(options))),
        // The memo layer keys on component identities that the seen-set's
        // own bookkeeping already computes: interned ids in kCollapsed
        // mode (collapse_key warms the Snap::form_id memos as a side
        // effect), memoized component form hashes otherwise.
        fp_memo_(options.memo
                     ? std::make_unique<por::FootprintMemo>(
                           cfg_, collapse_.get(), memo_shard_count(options),
                           options.memo_budget_bytes / 2)
                     : nullptr),
        disc_memo_(options.memo
                       ? std::make_unique<DiscoveryMemo>(
                             collapse_.get(), memo_shard_count(options),
                             options.memo_budget_bytes -
                                 options.memo_budget_bytes / 2)
                       : nullptr),
        telem_(options.telemetry
                   ? std::make_unique<util::Telemetry>(
                         options.threads > 1 ? options.threads : 1)
                   : nullptr),
        // Built even when the scenario declares no orbits: the symmetry
        // canonicalizer also renumbers uids (and drops next_uid where it
        // is pure allocation history), which merges states on its own.
        // Throws std::invalid_argument on an invalid orbit declaration.
        sym_(options.symmetry ? std::make_unique<SymContext>(cfg)
                              : nullptr),
        core_(cfg_, options_, executor_, seen_, reducer_.get(),
              collapse_.get(), fp_memo_.get(), disc_memo_.get(),
              telem_.get(), sym_.get()) {
    executor_.set_discovery_memo(disc_memo_.get());
  }

  // core_ holds references into this object's own members, so moving or
  // copying a Checker would leave it pointing at the source.
  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;
  Checker(Checker&&) = delete;
  Checker& operator=(Checker&&) = delete;

  /// Exhaustive search (bounded by the options): single-threaded over the
  /// configured frontier, or the parallel driver when threads > 1.
  CheckerResult run();

  /// Random walks from the initial state (simulator mode): each walk picks
  /// uniformly among strategy-filtered enabled transitions until
  /// quiescence or `max_steps`. With threads > 1, walks are split across
  /// a portfolio of workers with per-worker RNG streams.
  CheckerResult random_walk(std::uint64_t seed, int walks, int max_steps);

  [[nodiscard]] const Executor& executor() const noexcept {
    return executor_;
  }
  [[nodiscard]] const util::ShardedSeenSet& seen() const noexcept {
    return seen_;
  }

 private:
  /// Start the progress reporter when configured (telemetry on and a
  /// stream path or TTY requested); returns nullptr otherwise.
  std::unique_ptr<util::ProgressReporter> make_reporter() const;
  /// Emit the final halt line and fold the stream counters into `result`.
  static void finish_reporter(util::ProgressReporter* reporter,
                              CheckerResult& result);

  static std::size_t shard_count(const CheckerOptions& options) {
    if (options.seen_shards != 0) return options.seen_shards;
    return options.threads <= 1 ? 1 : 4 * static_cast<std::size_t>(
                                           options.threads);
  }

  static std::size_t memo_shard_count(const CheckerOptions& options) {
    return options.memo_shards != 0 ? options.memo_shards
                                    : shard_count(options);
  }

  const SystemConfig& cfg_;
  CheckerOptions options_;
  const PropertyList& props_;
  Executor executor_;
  util::ShardedSeenSet seen_;
  std::unique_ptr<util::CollapseTable> collapse_;
  std::unique_ptr<por::Reducer> reducer_;
  std::unique_ptr<por::FootprintMemo> fp_memo_;
  std::unique_ptr<DiscoveryMemo> disc_memo_;
  // Constructed before core_, which captures the raw pointer.
  std::unique_ptr<util::Telemetry> telem_;
  std::unique_ptr<SymContext> sym_;
  SearchCore core_;
  DiscoveryCache cache_;
};

}  // namespace nicemc::mc

#endif  // NICE_MC_CHECKER_H
