#include "mc/parallel.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/hash.h"

namespace nicemc::mc {

using detail::SearchClock;
using detail::seconds_since;

namespace {

void add_discovery(DiscoveryStats& into, const DiscoveryStats& from) {
  into.packet_discoveries += from.packet_discoveries;
  into.stats_discoveries += from.stats_discoveries;
  into.handler_runs += from.handler_runs;
  into.solver_queries += from.solver_queries;
  into.packets_found += from.packets_found;
}

/// Shared state of one parallel exhaustive run. Work is popped LIFO from
/// the deque; `active` counts workers currently expanding a node, so the
/// search is finished exactly when the deque is empty and active == 0.
struct SharedSearch {
  SharedSearch(const CheckerOptions& options, SearchClock::time_point start)
      : options(options), start(start) {}

  const CheckerOptions& options;
  const SearchClock::time_point start;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<SearchNode> work;
  std::size_t active{0};
  bool stop{false};

  std::atomic<std::uint64_t> transitions{0};
  std::atomic<std::uint64_t> unique_states{0};
  std::atomic<std::uint64_t> revisits{0};
  std::atomic<std::uint64_t> quiescent_states{0};
  std::atomic<bool> truncated{false};
  std::atomic<LimitReason> limit{LimitReason::kNone};

  std::mutex violations_mu;
  std::vector<ViolationRecord> violations;

  bool found_violation() {
    std::lock_guard<std::mutex> lock(violations_mu);
    return !violations.empty();
  }

  /// Append violations; returns true when the search should stop.
  bool record(std::vector<ViolationRecord>& vs) {
    std::lock_guard<std::mutex> lock(violations_mu);
    for (ViolationRecord& v : vs) violations.push_back(std::move(v));
    return options.stop_at_first_violation;
  }

  LimitReason limit_hit() const {
    if (transitions.load(std::memory_order_relaxed) >=
        options.max_transitions) {
      return LimitReason::kTransitions;
    }
    if (unique_states.load(std::memory_order_relaxed) >=
        options.max_unique_states) {
      return LimitReason::kUniqueStates;
    }
    if (options.time_limit_seconds > 0 &&
        seconds_since(start) >= options.time_limit_seconds) {
      return LimitReason::kTime;
    }
    return LimitReason::kNone;
  }
};

void search_worker(const SearchCore& core, SharedSearch& shared,
                   DiscoveryCache& cache) {
  for (;;) {
    SearchNode node;
    {
      std::unique_lock<std::mutex> lock(shared.mu);
      shared.cv.wait(lock, [&] {
        return shared.stop || !shared.work.empty() || shared.active == 0;
      });
      if (shared.stop) return;
      if (shared.work.empty()) return;  // active == 0: space exhausted
      if (const LimitReason lr = shared.limit_hit();
          lr != LimitReason::kNone) {
        shared.stop = true;
        shared.truncated.store(true);
        shared.limit.store(lr);
        shared.cv.notify_all();
        return;
      }
      node = std::move(shared.work.back());
      shared.work.pop_back();
      ++shared.active;
    }

    SearchCore::Expansion e = core.expand(node, cache);
    shared.transitions.fetch_add(1, std::memory_order_relaxed);

    bool want_stop = false;
    if (e.transition_violated) {
      want_stop = shared.record(e.violations);
    } else if (!e.new_state) {
      // Under partial-order reduction a revisit can still carry children
      // (re-expansion of transitions every earlier arrival slept); they
      // are pushed below like any other successors.
      shared.revisits.fetch_add(1, std::memory_order_relaxed);
    } else {
      shared.unique_states.fetch_add(1, std::memory_order_relaxed);
      if (e.quiescent) {
        shared.quiescent_states.fetch_add(1, std::memory_order_relaxed);
        if (!e.violations.empty()) want_stop = shared.record(e.violations);
      }
    }

    {
      std::lock_guard<std::mutex> lock(shared.mu);
      if (want_stop) shared.stop = true;
      for (SearchNode& child : e.children) {
        shared.work.push_back(std::move(child));
      }
      --shared.active;
      // Wake peers: new work arrived, or the terminal condition
      // (stop / empty-and-idle) may now hold.
      shared.cv.notify_all();
    }
  }
}

}  // namespace

CheckerResult run_parallel(const SearchCore& core, unsigned threads) {
  const auto start = SearchClock::now();
  if (threads < 1) threads = 1;
  const CheckerOptions& options = core.options();

  CheckerResult result;
  DiscoveryCache init_cache;
  std::vector<SearchNode> roots = core.init(result, init_cache);

  SharedSearch shared(options, start);
  shared.unique_states.store(result.unique_states);
  shared.quiescent_states.store(result.quiescent_states);
  shared.violations = std::move(result.violations);
  result.violations.clear();
  for (SearchNode& root : roots) shared.work.push_back(std::move(root));

  const bool stop_immediately =
      options.stop_at_first_violation && shared.found_violation();
  if (!stop_immediately && !shared.work.empty()) {
    std::vector<DiscoveryCache> caches(threads);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
      workers.emplace_back(search_worker, std::cref(core), std::ref(shared),
                           std::ref(caches[w]));
    }
    for (std::thread& t : workers) t.join();
    for (const DiscoveryCache& c : caches) {
      add_discovery(result.discovery, c.stats());
    }
  }

  result.transitions = shared.transitions.load();
  result.unique_states = shared.unique_states.load();
  result.revisits = shared.revisits.load();
  result.quiescent_states = shared.quiescent_states.load();
  result.violations = std::move(shared.violations);
  result.hit_limit = shared.limit.load();
  result.exhausted = shared.work.empty() && !shared.truncated.load() &&
                     !(options.stop_at_first_violation &&
                       result.found_violation());
  add_discovery(result.discovery, init_cache.stats());
  core.fill_store_stats(result);
  result.seconds = seconds_since(start);
  return result;
}

namespace {

/// Shared state of a random-walk portfolio run.
struct SharedWalks {
  explicit SharedWalks(SearchClock::time_point start) : start(start) {}

  const SearchClock::time_point start;
  std::atomic<std::uint64_t> transitions{0};
  std::atomic<std::uint64_t> unique_states{0};
  std::atomic<std::uint64_t> revisits{0};
  std::atomic<std::uint64_t> quiescent_states{0};
  std::atomic<bool> stop{false};
  std::atomic<LimitReason> limit{LimitReason::kNone};

  std::mutex violations_mu;
  std::vector<ViolationRecord> violations;
};

void walk_worker(const SearchCore& core, SharedWalks& shared,
                 DiscoveryCache& cache, std::uint64_t rng_seed,
                 unsigned worker, unsigned stride, int walks,
                 int max_steps) {
  const CheckerOptions& options = core.options();
  const Executor& executor = core.executor();
  util::SplitMix64 rng(rng_seed);

  auto record = [&](std::vector<ViolationRecord> vs) {
    std::lock_guard<std::mutex> lock(shared.violations_mu);
    for (ViolationRecord& v : vs) shared.violations.push_back(std::move(v));
  };

  for (int w = static_cast<int>(worker); w < walks;
       w += static_cast<int>(stride)) {
    if (shared.stop.load(std::memory_order_relaxed)) return;
    SystemState state = executor.make_initial();
    std::shared_ptr<const PathNode> path;
    for (int step = 0; step < max_steps; ++step) {
      if (options.time_limit_seconds > 0 &&
          seconds_since(shared.start) >= options.time_limit_seconds) {
        shared.limit.store(LimitReason::kTime);
        shared.stop.store(true);
        return;
      }
      auto ts = apply_strategy(options.strategy, core.config(), state,
                               executor.enabled(state, cache));
      if (ts.empty()) {
        shared.quiescent_states.fetch_add(1, std::memory_order_relaxed);
        std::vector<Violation> vs;
        executor.at_quiescence(state, vs);
        if (!vs.empty()) {
          std::vector<ViolationRecord> recs;
          const auto trace = trace_of(path);
          for (Violation& v : vs) {
            recs.push_back(ViolationRecord{std::move(v), trace});
          }
          record(std::move(recs));
          if (options.stop_at_first_violation) shared.stop.store(true);
        }
        break;
      }
      const Transition t =
          ts[static_cast<std::size_t>(rng.next_below(ts.size()))];
      std::vector<Violation> violations;
      executor.apply(state, t, violations);
      shared.transitions.fetch_add(1, std::memory_order_relaxed);
      path = std::make_shared<const PathNode>(PathNode{path, t});
      if (core.remember(state)) {
        shared.unique_states.fetch_add(1, std::memory_order_relaxed);
      } else {
        shared.revisits.fetch_add(1, std::memory_order_relaxed);
      }
      if (!violations.empty()) {
        std::vector<ViolationRecord> recs;
        const auto trace = trace_of(path);
        for (Violation& v : violations) {
          recs.push_back(ViolationRecord{std::move(v), trace});
        }
        record(std::move(recs));
        if (options.stop_at_first_violation) shared.stop.store(true);
        break;
      }
    }
  }
}

}  // namespace

CheckerResult run_random_walk_portfolio(const SearchCore& core,
                                        unsigned threads,
                                        std::uint64_t seed, int walks,
                                        int max_steps) {
  const auto start = SearchClock::now();
  if (threads < 1) threads = 1;

  SharedWalks shared(start);
  std::vector<DiscoveryCache> caches(threads);
  std::vector<std::uint64_t> seeds;
  seeds.reserve(threads);
  util::SplitMix64 seeder(seed);
  for (unsigned w = 0; w < threads; ++w) seeds.push_back(seeder.next());

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    workers.emplace_back(walk_worker, std::cref(core), std::ref(shared),
                         std::ref(caches[w]), seeds[w], w, threads, walks,
                         max_steps);
  }
  for (std::thread& t : workers) t.join();

  CheckerResult result;
  result.transitions = shared.transitions.load();
  result.unique_states = shared.unique_states.load();
  result.revisits = shared.revisits.load();
  result.quiescent_states = shared.quiescent_states.load();
  result.violations = std::move(shared.violations);
  result.hit_limit = shared.limit.load();
  for (const DiscoveryCache& c : caches) {
    add_discovery(result.discovery, c.stats());
  }
  core.fill_store_stats(result);
  result.seconds = seconds_since(start);
  return result;
}

}  // namespace nicemc::mc
