#include "mc/parallel.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "mc/checkpoint.h"
#include "util/hash.h"
#include "util/resource.h"

namespace nicemc::mc {

using detail::SearchClock;
using detail::seconds_since;

namespace {

/// Shared state of one parallel exhaustive run. Work is popped LIFO from
/// the deque; `active` counts workers currently expanding a node, so the
/// search is finished exactly when the deque is empty and active == 0.
struct SharedSearch {
  SharedSearch(const CheckerOptions& options, SearchClock::time_point start)
      : options(options), start(start) {}

  const CheckerOptions& options;
  const SearchClock::time_point start;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<SearchNode> work;
  std::size_t active{0};
  bool stop{false};
  /// Quiesce barrier for checkpointing: while set, no worker claims new
  /// work; the worker that observes active == 0 writes the snapshot
  /// (everything mutable is then at rest), clears the flag, and releases
  /// the others. All guarded by `mu`.
  bool snapshot_pending{false};
  std::uint64_t poll_tick{0};
  /// Telemetry gauge cadence (guarded by `mu`, like poll_tick).
  std::uint64_t gauge_tick{0};

  /// Durability context (may be null); the discovery sources a snapshot
  /// must sum (resumed seed + init cache + per-worker caches).
  Durability* dur{nullptr};
  DiscoveryStats seed_discovery;
  const DiscoveryCache* init_cache{nullptr};
  const std::vector<DiscoveryCache>* caches{nullptr};

  std::atomic<std::uint64_t> transitions{0};
  std::atomic<std::uint64_t> unique_states{0};
  std::atomic<std::uint64_t> revisits{0};
  std::atomic<std::uint64_t> quiescent_states{0};
  std::atomic<bool> truncated{false};
  std::atomic<LimitReason> limit{LimitReason::kNone};

  std::mutex violations_mu;
  std::vector<ViolationRecord> violations;

  bool found_violation() {
    std::lock_guard<std::mutex> lock(violations_mu);
    return !violations.empty();
  }

  /// Append violations; returns true when the search should stop.
  bool record(std::vector<ViolationRecord>& vs) {
    std::lock_guard<std::mutex> lock(violations_mu);
    for (ViolationRecord& v : vs) violations.push_back(std::move(v));
    return options.stop_at_first_violation;
  }

  LimitReason limit_hit() const {
    if (transitions.load(std::memory_order_relaxed) >=
        options.max_transitions) {
      return LimitReason::kTransitions;
    }
    if (unique_states.load(std::memory_order_relaxed) >=
        options.max_unique_states) {
      return LimitReason::kUniqueStates;
    }
    if (options.time_limit_seconds > 0 &&
        seconds_since(start) >= options.time_limit_seconds) {
      return LimitReason::kTime;
    }
    return LimitReason::kNone;
  }

  /// Sum every discovery source visible so far. Callers must hold `mu`
  /// with active == 0 (or have joined the workers) so no cache is mid-
  /// mutation.
  [[nodiscard]] DiscoveryStats discovery_now() const {
    DiscoveryStats disc = seed_discovery;
    if (init_cache != nullptr) add_discovery_stats(disc, init_cache->stats());
    if (caches != nullptr) {
      for (const DiscoveryCache& c : *caches) {
        add_discovery_stats(disc, c.stats());
      }
    }
    return disc;
  }
};

/// Write a checkpoint of the shared search. Caller holds `mu` and the
/// workers are quiesced (active == 0), so counters, deque, violations and
/// discovery caches are all at rest. The deque is snapshotted front-to-
/// back: re-push_back in that order reproduces it exactly, LIFO pops and
/// all.
void parallel_snapshot(const SearchCore& core, SharedSearch& shared) {
  Durability::Snapshot snap;
  snap.transitions = shared.transitions.load(std::memory_order_relaxed);
  snap.unique_states = shared.unique_states.load(std::memory_order_relaxed);
  snap.revisits = shared.revisits.load(std::memory_order_relaxed);
  snap.quiescent_states =
      shared.quiescent_states.load(std::memory_order_relaxed);
  snap.violations = &shared.violations;
  snap.discovery = shared.discovery_now();
  snap.frontier_rng = 0;
  snap.for_each_node =
      [&shared](const std::function<void(const SearchNode&)>& fn) {
        for (const SearchNode& n : shared.work) fn(n);
      };
  shared.dur->save(core, snap);
}

void search_worker(const SearchCore& core, SharedSearch& shared,
                   DiscoveryCache& cache, std::size_t worker) {
  const util::Telemetry::Binding bind(core.telemetry(), worker);
  util::WorkerTelemetry* const wt = util::Telemetry::current();
  const auto runnable = [&shared] {
    return shared.stop || shared.active == 0 ||
           (!shared.work.empty() && !shared.snapshot_pending);
  };
  for (;;) {
    SearchNode node;
    {
      std::unique_lock<std::mutex> lock(shared.mu);
      if (wt != nullptr) {
        // Instrumented wait: re-enter the idle scope every 200ms so a
        // long park is attributed as it happens — the reporter's
        // utilization gauge would otherwise not see the wait until the
        // worker wakes.
        for (;;) {
          const util::PhaseScope idle(util::Phase::kIdle);
          if (shared.cv.wait_for(lock, std::chrono::milliseconds(200),
                                 runnable)) {
            break;
          }
        }
      } else {
        shared.cv.wait(lock, runnable);
      }
      if (shared.stop) return;
      if (shared.dur != nullptr) {
        if (!shared.snapshot_pending && shared.dur->due()) {
          shared.snapshot_pending = true;
        }
        if (shared.snapshot_pending) {
          if (shared.active > 0) continue;  // wait for peers to quiesce
          parallel_snapshot(core, shared);
          shared.snapshot_pending = false;
          shared.cv.notify_all();
        }
        if (++shared.poll_tick % 32 == 0) {
          const LimitReason r = shared.dur->poll(core, shared.work.size());
          if (r != LimitReason::kNone) {
            shared.stop = true;
            shared.truncated.store(true);
            shared.limit.store(r);
            shared.cv.notify_all();
            return;
          }
        }
      }
      if (shared.work.empty()) return;  // active == 0: space exhausted
      if (const LimitReason lr = shared.limit_hit();
          lr != LimitReason::kNone) {
        shared.stop = true;
        shared.truncated.store(true);
        shared.limit.store(lr);
        shared.cv.notify_all();
        return;
      }
      if (wt != nullptr) {
        core.telemetry()->frontier.store(shared.work.size(),
                                         std::memory_order_relaxed);
        // Expensive gauges (engine bytes, memo stats) on a coarse
        // cadence; they take shard locks, so not every claim.
        if (++shared.gauge_tick % 256 == 0) {
          core.publish_gauges(shared.work.size());
        }
      }
      node = std::move(shared.work.back());
      shared.work.pop_back();
      ++shared.active;
    }

    if (wt != nullptr) {
      wt->record_expand(static_cast<std::uint32_t>(node.transition.kind),
                        node.transition.a, node.transition.aux);
    }
    SearchCore::Expansion e = core.expand(node, cache);
    shared.transitions.fetch_add(1, std::memory_order_relaxed);
    if (wt != nullptr) wt->add_transitions();

    bool want_stop = false;
    if (e.transition_violated) {
      want_stop = shared.record(e.violations);
    } else if (!e.new_state) {
      // Under partial-order reduction a revisit can still carry children
      // (re-expansion of transitions every earlier arrival slept); they
      // are pushed below like any other successors.
      shared.revisits.fetch_add(1, std::memory_order_relaxed);
      if (wt != nullptr) wt->add_revisits();
    } else {
      shared.unique_states.fetch_add(1, std::memory_order_relaxed);
      if (wt != nullptr) wt->add_unique();
      if (e.quiescent) {
        shared.quiescent_states.fetch_add(1, std::memory_order_relaxed);
        if (wt != nullptr) wt->add_quiescent();
        if (!e.violations.empty()) want_stop = shared.record(e.violations);
      }
    }

    {
      std::lock_guard<std::mutex> lock(shared.mu);
      if (want_stop) shared.stop = true;
      for (SearchNode& child : e.children) {
        shared.work.push_back(std::move(child));
      }
      --shared.active;
      // Wake peers: new work arrived, or the terminal condition
      // (stop / empty-and-idle) may now hold.
      shared.cv.notify_all();
    }
  }
}

}  // namespace

CheckerResult run_parallel(const SearchCore& core, unsigned threads,
                           Durability* dur) {
  const auto start = SearchClock::now();
  if (threads < 1) threads = 1;
  const CheckerOptions& options = core.options();

  CheckerResult result;
  DiscoveryCache init_cache;
  std::vector<SearchNode> roots;
  if (dur != nullptr && dur->resumed()) {
    // Stores were reloaded by Durability::resume; carry the counters and
    // re-seed the deque with the rebuilt pending nodes.
    dur->seed(result);
    roots = dur->take_nodes();
  } else {
    roots = core.init(result, init_cache);
  }

  SharedSearch shared(options, start);
  shared.transitions.store(result.transitions);
  shared.unique_states.store(result.unique_states);
  shared.revisits.store(result.revisits);
  shared.quiescent_states.store(result.quiescent_states);
  shared.violations = std::move(result.violations);
  result.violations.clear();
  for (SearchNode& root : roots) shared.work.push_back(std::move(root));

  std::vector<DiscoveryCache> caches(threads);
  shared.dur = dur;
  shared.seed_discovery = result.discovery;
  shared.init_cache = &init_cache;
  shared.caches = &caches;

  if (core.telemetry() != nullptr) {
    // Seed the reporter's cumulative totals with the resumed/init
    // counters; the per-worker counters only add this process's work.
    core.telemetry()->set_base(result.transitions, result.unique_states,
                               result.revisits, result.quiescent_states);
  }

  const bool stop_immediately =
      options.stop_at_first_violation && shared.found_violation();
  if (!stop_immediately && !shared.work.empty()) {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
      workers.emplace_back(search_worker, std::cref(core), std::ref(shared),
                           std::ref(caches[w]), static_cast<std::size_t>(w));
    }
    for (std::thread& t : workers) t.join();
    for (const DiscoveryCache& c : caches) {
      add_discovery_stats(result.discovery, c.stats());
    }
  }

  result.transitions = shared.transitions.load();
  result.unique_states = shared.unique_states.load();
  result.revisits = shared.revisits.load();
  result.quiescent_states = shared.quiescent_states.load();
  result.violations = std::move(shared.violations);
  result.hit_limit = shared.limit.load();
  result.exhausted = shared.work.empty() && !shared.truncated.load() &&
                     !(options.stop_at_first_violation &&
                       result.found_violation());
  add_discovery_stats(result.discovery, init_cache.stats());
  core.publish_gauges(shared.work.size());
  if (dur != nullptr) {
    // Final checkpoint with the workers joined: whatever halted the run
    // (limit, interrupt, memory, exhaustion) leaves a resumable snapshot.
    Durability::Snapshot snap;
    snap.transitions = result.transitions;
    snap.unique_states = result.unique_states;
    snap.revisits = result.revisits;
    snap.quiescent_states = result.quiescent_states;
    snap.violations = &result.violations;
    snap.discovery = result.discovery;
    snap.frontier_rng = 0;
    snap.for_each_node =
        [&shared](const std::function<void(const SearchNode&)>& fn) {
          for (const SearchNode& n : shared.work) fn(n);
        };
    dur->save(core, snap);
  }
  core.finish_stats(result, dur);
  result.seconds = seconds_since(start);
  return result;
}

namespace {

/// Shared state of a random-walk portfolio run.
struct SharedWalks {
  explicit SharedWalks(SearchClock::time_point start) : start(start) {}

  const SearchClock::time_point start;
  std::atomic<std::uint64_t> transitions{0};
  std::atomic<std::uint64_t> unique_states{0};
  std::atomic<std::uint64_t> revisits{0};
  std::atomic<std::uint64_t> quiescent_states{0};
  std::atomic<bool> stop{false};
  std::atomic<LimitReason> limit{LimitReason::kNone};

  std::mutex violations_mu;
  std::vector<ViolationRecord> violations;
};

void walk_worker(const SearchCore& core, SharedWalks& shared,
                 DiscoveryCache& cache, std::uint64_t rng_seed,
                 unsigned worker, unsigned stride, int walks,
                 int max_steps) {
  const CheckerOptions& options = core.options();
  const Executor& executor = core.executor();
  util::SplitMix64 rng(rng_seed);
  const util::Telemetry::Binding bind(core.telemetry(), worker);
  util::WorkerTelemetry* const wt = util::Telemetry::current();
  std::uint64_t steps_since_publish = 0;

  auto record = [&](std::vector<ViolationRecord> vs) {
    std::lock_guard<std::mutex> lock(shared.violations_mu);
    for (ViolationRecord& v : vs) shared.violations.push_back(std::move(v));
  };

  for (int w = static_cast<int>(worker); w < walks;
       w += static_cast<int>(stride)) {
    if (shared.stop.load(std::memory_order_relaxed)) return;
    SystemState state = executor.make_initial();
    std::shared_ptr<const PathNode> path;
    for (int step = 0; step < max_steps; ++step) {
      if (options.time_limit_seconds > 0 &&
          seconds_since(shared.start) >= options.time_limit_seconds) {
        shared.limit.store(LimitReason::kTime);
        shared.stop.store(true);
        return;
      }
      auto ts = apply_strategy(options.strategy, core.config(), state,
                               executor.enabled(state, cache));
      if (ts.empty()) {
        shared.quiescent_states.fetch_add(1, std::memory_order_relaxed);
        if (wt != nullptr) wt->add_quiescent();
        std::vector<Violation> vs;
        executor.at_quiescence(state, vs);
        if (!vs.empty()) {
          std::vector<ViolationRecord> recs;
          const auto trace = trace_of(path);
          for (Violation& v : vs) {
            recs.push_back(ViolationRecord{std::move(v), trace});
          }
          record(std::move(recs));
          if (options.stop_at_first_violation) shared.stop.store(true);
        }
        break;
      }
      const Transition t =
          ts[static_cast<std::size_t>(rng.next_below(ts.size()))];
      if (wt != nullptr) {
        wt->record_expand(static_cast<std::uint32_t>(t.kind), t.a, t.aux);
      }
      std::vector<Violation> violations;
      executor.apply(state, t, violations);
      shared.transitions.fetch_add(1, std::memory_order_relaxed);
      if (wt != nullptr) {
        wt->add_transitions();
        // Walks have no frontier; publish just the byte/memo gauges on a
        // coarse per-worker cadence.
        if (++steps_since_publish >= 1024) {
          steps_since_publish = 0;
          core.publish_gauges(0);
        }
      }
      path = std::make_shared<const PathNode>(PathNode{path, t});
      if (core.remember(state)) {
        shared.unique_states.fetch_add(1, std::memory_order_relaxed);
        if (wt != nullptr) wt->add_unique();
      } else {
        shared.revisits.fetch_add(1, std::memory_order_relaxed);
        if (wt != nullptr) wt->add_revisits();
      }
      if (!violations.empty()) {
        std::vector<ViolationRecord> recs;
        const auto trace = trace_of(path);
        for (Violation& v : violations) {
          recs.push_back(ViolationRecord{std::move(v), trace});
        }
        record(std::move(recs));
        if (options.stop_at_first_violation) shared.stop.store(true);
        break;
      }
    }
  }
}

}  // namespace

CheckerResult run_random_walk_portfolio(const SearchCore& core,
                                        unsigned threads,
                                        std::uint64_t seed, int walks,
                                        int max_steps) {
  const auto start = SearchClock::now();
  if (threads < 1) threads = 1;

  SharedWalks shared(start);
  if (core.telemetry() != nullptr) core.telemetry()->set_base(0, 0, 0, 0);
  std::vector<DiscoveryCache> caches(threads);
  std::vector<std::uint64_t> seeds;
  seeds.reserve(threads);
  util::SplitMix64 seeder(seed);
  for (unsigned w = 0; w < threads; ++w) seeds.push_back(seeder.next());

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    workers.emplace_back(walk_worker, std::cref(core), std::ref(shared),
                         std::ref(caches[w]), seeds[w], w, threads, walks,
                         max_steps);
  }
  for (std::thread& t : workers) t.join();

  CheckerResult result;
  result.transitions = shared.transitions.load();
  result.unique_states = shared.unique_states.load();
  result.revisits = shared.revisits.load();
  result.quiescent_states = shared.quiescent_states.load();
  result.violations = std::move(shared.violations);
  result.hit_limit = shared.limit.load();
  for (const DiscoveryCache& c : caches) {
    add_discovery_stats(result.discovery, c.stats());
  }
  core.publish_gauges(0);
  core.finish_stats(result, nullptr);
  result.seconds = seconds_since(start);
  return result;
}

}  // namespace nicemc::mc
