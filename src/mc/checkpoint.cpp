#include "mc/checkpoint.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <memory>
#include <unordered_map>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace nicemc::mc {

using detail::SearchClock;
using detail::seconds_since;

// ---- Cooperative signal handling ------------------------------------------

namespace {

std::atomic<bool> g_interrupt{false};

extern "C" void nice_interrupt_handler(int /*signum*/) {
  // Async-signal-safe: one relaxed store. The drivers poll the flag
  // between expansions, checkpoint, and halt gracefully.
  g_interrupt.store(true, std::memory_order_relaxed);
}

}  // namespace

void install_cooperative_signal_handlers() {
#if defined(__unix__) || defined(__APPLE__)
  struct sigaction sa{};
  sa.sa_handler = nice_interrupt_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: interrupt blocking syscalls promptly
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
#else
  std::signal(SIGINT, nice_interrupt_handler);
  std::signal(SIGTERM, nice_interrupt_handler);
#endif
}

void request_interrupt() {
  g_interrupt.store(true, std::memory_order_relaxed);
}

void clear_interrupt() { g_interrupt.store(false, std::memory_order_relaxed); }

bool interrupt_requested() {
  return g_interrupt.load(std::memory_order_relaxed);
}

// ---- Checkpoint file layer ------------------------------------------------

namespace {

// "NICECKPT" as a big-endian u64, followed by the format version. Bump
// the version on any payload layout change — the loader rejects other
// versions with an explicit diagnostic instead of misparsing.
constexpr std::uint64_t kMagic = 0x4E494345434B5054ULL;
constexpr std::uint32_t kVersion = 1;
// magic u64 + version u32 + sequence u64 + payload-size u64 + Hash128.
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8 + 16;

// Coarse per-pending-node estimate for the watchdog's frontier term:
// the SearchNode itself plus its share of the COW state and path chain.
constexpr std::uint64_t kFrontierNodeBytes = 512;

bool read_file(const std::string& path, std::string& out,
               std::string& error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    error = "cannot open " + path;
    return false;
  }
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) {
    error = "read error on " + path;
    out.clear();
  }
  return ok;
}

#if defined(__unix__) || defined(__APPLE__)
void fsync_parent_dir(const std::string& path) {
  // Make the rename itself durable: fsync the containing directory.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}
#endif

}  // namespace

std::string checkpoint_slot_a(const std::string& path) { return path + ".a"; }
std::string checkpoint_slot_b(const std::string& path) { return path + ".b"; }

SlotInfo read_checkpoint_slot(const std::string& slot_path) {
  SlotInfo info;
  std::string bytes;
  if (!read_file(slot_path, bytes, info.error)) return info;
  if (bytes.size() < kHeaderBytes) {
    info.error = slot_path + ": truncated header (" +
                 std::to_string(bytes.size()) + " bytes)";
    return info;
  }
  util::Des h(std::string_view(bytes.data(), kHeaderBytes));
  if (h.get_u64() != kMagic) {
    info.error = slot_path + ": bad magic (not a checkpoint file)";
    return info;
  }
  const std::uint32_t version = h.get_u32();
  if (version != kVersion) {
    info.error = slot_path + ": version mismatch (file v" +
                 std::to_string(version) + ", expected v" +
                 std::to_string(kVersion) + ")";
    return info;
  }
  info.sequence = h.get_u64();
  const std::uint64_t payload_size = h.get_u64();
  util::Hash128 sum;
  sum.lo = h.get_u64();
  sum.hi = h.get_u64();
  if (bytes.size() - kHeaderBytes != payload_size) {
    info.error = slot_path + ": truncated payload (" +
                 std::to_string(bytes.size() - kHeaderBytes) + " of " +
                 std::to_string(payload_size) + " bytes)";
    return info;
  }
  const std::string_view payload(bytes.data() + kHeaderBytes,
                                 bytes.size() - kHeaderBytes);
  const util::Hash128 actual = util::hash128(
      {reinterpret_cast<const std::byte*>(payload.data()), payload.size()});
  if (actual.lo != sum.lo || actual.hi != sum.hi) {
    info.error = slot_path + ": checksum mismatch (corrupt payload)";
    return info;
  }
  info.payload.assign(payload);
  info.valid = true;
  return info;
}

bool write_checkpoint_slot(const std::string& slot_path,
                           std::uint64_t sequence, std::string_view payload,
                           std::string& error) {
  util::Ser header;
  header.put_u64(kMagic);
  header.put_u32(kVersion);
  header.put_u64(sequence);
  header.put_u64(payload.size());
  const util::Hash128 sum = util::hash128(
      {reinterpret_cast<const std::byte*>(payload.data()), payload.size()});
  header.put_u64(sum.lo);
  header.put_u64(sum.hi);

  const std::string tmp = slot_path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    error = "cannot create " + tmp;
    return false;
  }
  const auto head = header.bytes();
  bool ok = std::fwrite(head.data(), 1, head.size(), f) == head.size() &&
            std::fwrite(payload.data(), 1, payload.size(), f) ==
                payload.size() &&
            std::fflush(f) == 0;
#if defined(__unix__) || defined(__APPLE__)
  // The durability point: data reaches disk before the rename publishes
  // it, so a kill at any instant leaves either the old slot or the new
  // one — never a torn file under the slot name.
  ok = ok && ::fsync(fileno(f)) == 0;
#endif
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    error = "write failed for " + tmp;
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), slot_path.c_str()) != 0) {
    error = "rename failed for " + slot_path;
    std::remove(tmp.c_str());
    return false;
  }
#if defined(__unix__) || defined(__APPLE__)
  fsync_parent_dir(slot_path);
#endif
  return true;
}

// ---- Config fingerprint ---------------------------------------------------

util::Hash128 search_config_fingerprint(const SystemConfig& cfg,
                                        const CheckerOptions& options,
                                        const Executor& executor) {
  util::Ser s;
  s.put_u8(static_cast<std::uint8_t>(options.strategy));
  s.put_u8(static_cast<std::uint8_t>(options.state_store));
  s.put_u8(static_cast<std::uint8_t>(options.reduction));
  s.put_u64(options.max_depth);
  s.put_bool(options.stop_at_first_violation);
  s.put_bool(cfg.canonical_flowtables);
  // Symmetry changes what a stored key *means* (canonical image, not the
  // raw state), so a resume must match both the knob and the orbits.
  s.put_bool(options.symmetry);
  s.put_u32(static_cast<std::uint32_t>(cfg.symmetry_orbits.size()));
  for (const auto& orbit : cfg.symmetry_orbits) {
    s.put_u32(static_cast<std::uint32_t>(orbit.size()));
    for (of::HostId h : orbit) s.put_u32(h);
  }
  // The scenario itself: topology, app, hosts, scripts, and installed
  // property monitors all shape the canonical initial state.
  const SystemState initial = executor.make_initial();
  initial.serialize(s, cfg.canonical_flowtables);
  return s.hash();
}

// ---- Durability context ---------------------------------------------------

namespace {

void serialize_violations(util::Ser& s,
                          const std::vector<ViolationRecord>& vs) {
  s.put_u64(vs.size());
  for (const ViolationRecord& v : vs) {
    s.put_str(v.violation.property);
    s.put_str(v.violation.message);
    s.put_u32(static_cast<std::uint32_t>(v.trace.size()));
    for (const Transition& t : v.trace) t.serialize(s);
  }
}

bool deserialize_violations(util::Des& d, std::vector<ViolationRecord>& vs) {
  const std::uint64_t n = d.get_count(8);
  if (!d.ok()) return false;
  vs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ViolationRecord v;
    v.violation.property = std::string(d.get_str());
    v.violation.message = std::string(d.get_str());
    const std::uint32_t steps = d.get_u32();
    if (steps > d.remaining()) d.fail();
    if (!d.ok()) return false;
    v.trace.reserve(steps);
    for (std::uint32_t j = 0; j < steps; ++j) {
      v.trace.push_back(Transition::deserialize(d));
    }
    if (!d.ok()) return false;
    vs.push_back(std::move(v));
  }
  return true;
}

void serialize_sleep_set(util::Ser& s, const por::SleepSet& sleep) {
  s.put_u32(static_cast<std::uint32_t>(sleep.size()));
  for (const por::SleepEntry& z : sleep) {
    s.put_u64(z.thash);
    z.fp.serialize(s);
  }
}

bool deserialize_sleep_set(util::Des& d, por::SleepSet& sleep) {
  const std::uint32_t n = d.get_u32();
  if (n > d.remaining() / 8) d.fail();
  if (!d.ok()) return false;
  sleep.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    por::SleepEntry z;
    z.thash = d.get_u64();
    z.fp = por::Footprint::deserialize(d);
    sleep.push_back(std::move(z));
  }
  return d.ok();
}

bool expect_tag(util::Des& d, char tag) {
  if (static_cast<char>(d.get_u8()) != tag) d.fail();
  return d.ok();
}

}  // namespace

Durability::Durability(const CheckerOptions& options, util::Hash128 config_fp,
                       por::FootprintMemo* fp_memo, DiscoveryMemo* disc_memo)
    : options_(options),
      config_fp_(config_fp),
      fp_memo_(fp_memo),
      disc_memo_(disc_memo),
      last_save_(SearchClock::now()) {
  if (options_.handle_signals) install_cooperative_signal_handlers();
}

bool Durability::due() const {
  return checkpointing() && options_.checkpoint_interval_seconds > 0 &&
         seconds_since(last_save_) >= options_.checkpoint_interval_seconds;
}

bool Durability::save(const SearchCore& core, const Snapshot& snap) {
  if (!checkpointing()) return true;

  // Serialization + slot write are attributed to the checkpoint phase
  // (no-op when the calling thread carries no telemetry binding — e.g.
  // the parallel driver's final save from the main thread).
  const util::PhaseScope phase(util::Phase::kCheckpoint);

  util::Ser s;
  s.put_tag('C');
  s.put_u64(config_fp_.lo);
  s.put_u64(config_fp_.hi);

  s.put_tag('K');
  s.put_u64(snap.transitions);
  s.put_u64(snap.unique_states);
  s.put_u64(snap.revisits);
  s.put_u64(snap.quiescent_states);
  const auto [replays, woken] = core.wakeup_replay_counters();
  s.put_u64(replays);
  s.put_u64(woken);

  s.put_tag('V');
  static const std::vector<ViolationRecord> kNoViolations;
  serialize_violations(s,
                       snap.violations != nullptr ? *snap.violations
                                                  : kNoViolations);

  s.put_tag('D');
  s.put_u64(snap.discovery.packet_discoveries);
  s.put_u64(snap.discovery.stats_discoveries);
  s.put_u64(snap.discovery.handler_runs);
  s.put_u64(snap.discovery.solver_queries);
  s.put_u64(snap.discovery.packets_found);

  s.put_tag('S');
  core.seen().serialize(s);

  s.put_tag('B');
  s.put_bool(core.collapse() != nullptr);
  if (core.collapse() != nullptr) core.collapse()->serialize(s);

  s.put_tag('Z');
  s.put_bool(core.reducer() != nullptr);
  if (core.reducer() != nullptr) core.reducer()->store().serialize(s);

  s.put_tag('F');
  s.put_u64(snap.frontier_rng);

  // The shared PathNode DAG as a parent-indexed table (parents strictly
  // before children), then the pending nodes referencing it. States are
  // not stored at all — restore rebuilds them by deterministic replay.
  std::vector<const SearchNode*> nodes;
  std::unordered_map<const PathNode*, std::uint32_t> index;
  std::vector<const PathNode*> order;
  std::vector<const PathNode*> chain;
  const auto register_path = [&](const PathNode* p) {
    chain.clear();
    while (p != nullptr && index.find(p) == index.end()) {
      chain.push_back(p);
      p = p->parent.get();
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      index.emplace(*it, static_cast<std::uint32_t>(order.size()));
      order.push_back(*it);
    }
  };
  snap.for_each_node([&](const SearchNode& n) {
    nodes.push_back(&n);
    register_path(n.path.get());
  });
  const auto path_ref = [&](const PathNode* p) -> std::uint32_t {
    return p == nullptr ? 0 : index.at(p) + 1;
  };

  s.put_u64(order.size());
  for (const PathNode* p : order) {
    s.put_u32(path_ref(p->parent.get()));
    p->transition.serialize(s);
  }
  s.put_u64(nodes.size());
  for (const SearchNode* n : nodes) {
    s.put_u32(path_ref(n->path.get()));
    n->transition.serialize(s);
    s.put_u64(n->depth);
    serialize_sleep_set(s, n->sleep);
    s.put_u32(static_cast<std::uint32_t>(n->wake.size()));
    for (const std::uint64_t w : n->wake) s.put_u64(w);
    s.put_u32(static_cast<std::uint32_t>(n->cond.size()));
    for (const CondSleep& c : n->cond) {
      c.transition.serialize(s);
      c.fp.serialize(s);
      s.put_u64(c.thash);
    }
    s.put_bool(n->claim_free);
  }

  const std::string payload = s.take();
  const bool slot_a = sequence_ % 2 == 1;
  const std::string slot = slot_a
                               ? checkpoint_slot_a(options_.checkpoint_path)
                               : checkpoint_slot_b(options_.checkpoint_path);
  std::string error;
  if (!write_checkpoint_slot(slot, sequence_, payload, error)) return false;
  ++sequence_;
  ++checkpoints_written_;
  checkpoint_bytes_ = payload.size() + kHeaderBytes;
  last_save_ = SearchClock::now();
  if (util::WorkerTelemetry* wt = util::Telemetry::current();
      wt != nullptr) {
    wt->record_event(util::FlightEvent::Kind::kCheckpoint,
                     checkpoint_bytes_, slot_a ? "slot_a" : "slot_b");
  }
  return true;
}

bool Durability::parse_payload(const SearchCore& core, util::Des& d,
                               std::string& error) {
  // Section order mirrors save(). Cheap validations (fingerprint) run
  // before any store is touched; a failure after stores were touched
  // clears them so the next candidate (or a fresh run) starts clean.
  if (!expect_tag(d, 'C')) {
    error = "missing config section";
    return false;
  }
  util::Hash128 fp;
  fp.lo = d.get_u64();
  fp.hi = d.get_u64();
  if (!d.ok() || fp.lo != config_fp_.lo || fp.hi != config_fp_.hi) {
    error = "configuration fingerprint mismatch (checkpoint was written "
            "by a different scenario/options combination)";
    return false;
  }

  if (!expect_tag(d, 'K')) {
    error = "missing counters section";
    return false;
  }
  seed_transitions_ = d.get_u64();
  seed_unique_ = d.get_u64();
  seed_revisits_ = d.get_u64();
  seed_quiescent_ = d.get_u64();
  const std::uint64_t replays = d.get_u64();
  const std::uint64_t woken = d.get_u64();

  if (!expect_tag(d, 'V') ||
      !deserialize_violations(d, seed_violations_)) {
    error = "malformed violations section";
    seed_violations_.clear();
    return false;
  }

  if (!expect_tag(d, 'D')) {
    error = "missing discovery section";
    return false;
  }
  seed_discovery_.packet_discoveries = d.get_u64();
  seed_discovery_.stats_discoveries = d.get_u64();
  seed_discovery_.handler_runs = d.get_u64();
  seed_discovery_.solver_queries = d.get_u64();
  seed_discovery_.packets_found = d.get_u64();

  const auto clear_stores = [&core] {
    core.seen().clear();
    if (core.collapse() != nullptr) core.collapse()->clear();
    if (core.reducer() != nullptr) core.reducer()->store().clear();
  };

  // Store sections. All three stores hold opaque byte keys (the seen-set's
  // id tuples and the sleep store's identities reference collapse-table
  // ids *by value*), and the collapse restore re-interns blobs in dense id
  // order, reproducing the exact id assignment — so restoring in payload
  // order keeps every cross-reference valid verbatim.
  if (!expect_tag(d, 'S')) {
    error = "missing seen-set section";
    return false;
  }
  if (!core.seen().restore(d)) {
    error = "malformed seen-set section";
    clear_stores();
    return false;
  }

  if (!expect_tag(d, 'B')) {
    error = "missing collapse section";
    clear_stores();
    return false;
  }
  const bool has_collapse = d.get_bool();
  if (has_collapse != (core.collapse() != nullptr)) {
    error = "collapse-table presence mismatch";
    clear_stores();
    return false;
  }
  if (has_collapse && !core.collapse()->restore(d)) {
    error = "malformed collapse-table section";
    clear_stores();
    return false;
  }

  if (!expect_tag(d, 'Z')) {
    error = "missing sleep-store section";
    clear_stores();
    return false;
  }
  const bool has_sleep = d.get_bool();
  if (has_sleep != (core.reducer() != nullptr)) {
    error = "reduction-mode mismatch";
    clear_stores();
    return false;
  }
  if (has_sleep && !core.reducer()->store().restore(d)) {
    error = "malformed sleep-store section";
    clear_stores();
    return false;
  }

  if (!expect_tag(d, 'F')) {
    error = "missing frontier section";
    clear_stores();
    return false;
  }
  frontier_rng_ = d.get_u64();

  const std::uint64_t n_paths = d.get_count(5);
  if (!d.ok()) {
    error = "malformed frontier path table";
    clear_stores();
    return false;
  }
  std::vector<std::shared_ptr<const PathNode>> paths;
  std::vector<std::uint32_t> parent_of;
  paths.reserve(n_paths);
  parent_of.reserve(n_paths);
  for (std::uint64_t i = 0; i < n_paths; ++i) {
    const std::uint32_t pref = d.get_u32();
    if (pref > i) d.fail();  // parents are strictly before children
    Transition t = Transition::deserialize(d);
    if (!d.ok()) {
      error = "malformed frontier path table";
      clear_stores();
      return false;
    }
    paths.push_back(std::make_shared<const PathNode>(
        PathNode{pref == 0 ? nullptr : paths[pref - 1], std::move(t)}));
    parent_of.push_back(pref);
  }

  const std::uint64_t n_nodes = d.get_count(5);
  if (!d.ok()) {
    error = "malformed frontier nodes";
    clear_stores();
    return false;
  }
  struct PendingNode {
    std::uint32_t path_ref{0};
    SearchNode node;
  };
  std::vector<PendingNode> pending;
  pending.reserve(n_nodes);
  for (std::uint64_t i = 0; i < n_nodes; ++i) {
    PendingNode p;
    p.path_ref = d.get_u32();
    if (p.path_ref > n_paths) d.fail();
    p.node.transition = Transition::deserialize(d);
    p.node.depth = static_cast<std::size_t>(d.get_u64());
    if (!deserialize_sleep_set(d, p.node.sleep)) {
      error = "malformed frontier nodes";
      clear_stores();
      return false;
    }
    const std::uint32_t wakes = d.get_u32();
    if (wakes > d.remaining() / 8) d.fail();
    if (!d.ok()) {
      error = "malformed frontier nodes";
      clear_stores();
      return false;
    }
    p.node.wake.reserve(wakes);
    for (std::uint32_t j = 0; j < wakes; ++j) {
      p.node.wake.push_back(d.get_u64());
    }
    const std::uint32_t conds = d.get_u32();
    if (conds > d.remaining() / 8) d.fail();
    if (!d.ok()) {
      error = "malformed frontier nodes";
      clear_stores();
      return false;
    }
    p.node.cond.reserve(conds);
    for (std::uint32_t j = 0; j < conds; ++j) {
      CondSleep c;
      c.transition = Transition::deserialize(d);
      c.fp = por::Footprint::deserialize(d);
      c.thash = d.get_u64();
      p.node.cond.push_back(std::move(c));
    }
    p.node.claim_free = d.get_bool();
    if (!d.ok()) {
      error = "malformed frontier nodes";
      clear_stores();
      return false;
    }
    pending.push_back(std::move(p));
  }
  if (!d.done()) {
    error = "trailing bytes after frontier section";
    clear_stores();
    return false;
  }

  // Rebuild the states by one memoized deterministic-replay pass over the
  // path table: state(i) = apply(transition(i), state(parent(i))), with
  // the initial state at ref 0. Prefixes are computed once and shared,
  // exactly like the live search shares them. Valid checkpoints never
  // route a path through a violating transition, so the sink stays empty.
  const Executor& executor = core.executor();
  auto initial =
      std::make_shared<const SystemState>(executor.make_initial());
  std::vector<std::shared_ptr<const SystemState>> state_at(paths.size());
  std::vector<Violation> sink;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const SystemState& src =
        parent_of[i] == 0 ? *initial : *state_at[parent_of[i] - 1];
    SystemState next = src.clone();
    executor.apply(next, paths[i]->transition, sink);
    state_at[i] = std::make_shared<const SystemState>(std::move(next));
  }

  nodes_.clear();
  nodes_.reserve(pending.size());
  for (PendingNode& p : pending) {
    p.node.state = p.path_ref == 0 ? initial : state_at[p.path_ref - 1];
    p.node.path = p.path_ref == 0 ? nullptr : paths[p.path_ref - 1];
    nodes_.push_back(std::move(p.node));
  }

  core.seed_wakeup_replay_counters(replays, woken);
  return true;
}

bool Durability::resume(const SearchCore& core, std::string& error) {
  error.clear();
  SlotInfo slots[2] = {
      read_checkpoint_slot(checkpoint_slot_a(options_.checkpoint_path)),
      read_checkpoint_slot(checkpoint_slot_b(options_.checkpoint_path))};
  // Newest valid slot first; fall back to the older one if the newest
  // payload is rejected (e.g. fingerprint mismatch after corruption of
  // the config the run was launched with).
  int order[2] = {0, 1};
  if (slots[1].valid &&
      (!slots[0].valid || slots[1].sequence > slots[0].sequence)) {
    order[0] = 1;
    order[1] = 0;
  }
  for (const int i : order) {
    SlotInfo& slot = slots[i];
    if (!slot.valid) {
      if (!slot.error.empty()) {
        if (!error.empty()) error += "; ";
        error += slot.error;
      }
      continue;
    }
    util::Des d(slot.payload);
    std::string perr;
    if (parse_payload(core, d, perr)) {
      resumed_ = true;
      sequence_ = slot.sequence + 1;
      last_save_ = SearchClock::now();
      return true;
    }
    if (!error.empty()) error += "; ";
    error += "slot seq " + std::to_string(slot.sequence) + ": " + perr;
  }
  if (error.empty()) error = "no checkpoint slots found";
  return false;
}

void Durability::seed(CheckerResult& result) {
  if (!resumed_) return;
  result.transitions = seed_transitions_;
  result.unique_states = seed_unique_;
  result.revisits = seed_revisits_;
  result.quiescent_states = seed_quiescent_;
  result.violations = std::move(seed_violations_);
  seed_violations_.clear();
  result.discovery = seed_discovery_;
  result.durability.resumed = true;
}

LimitReason Durability::poll(const SearchCore& core,
                             std::uint64_t frontier_nodes) {
  util::WorkerTelemetry* const wt = util::Telemetry::current();
  if (interrupt_requested()) {
    clear_interrupt();  // honored: a second signal can request another halt
    if (wt != nullptr) {
      wt->record_event(util::FlightEvent::Kind::kSignal, 0, "interrupt");
    }
    return LimitReason::kInterrupted;
  }
  if (options_.memory_budget_bytes == 0) return LimitReason::kNone;
  std::uint64_t bytes = core.resident_bytes(frontier_nodes);
  watchdog_bytes_ = bytes;
  while (bytes > options_.memory_budget_bytes) {
    const std::uint64_t fp_b =
        fp_memo_ != nullptr ? fp_memo_->byte_budget() : 0;
    const std::uint64_t disc_b =
        disc_memo_ != nullptr ? disc_memo_->byte_budget() : 0;
    if (fp_b == 0 && disc_b == 0) {
      // Ladder exhausted: the irreducible search state (seen-set,
      // collapse table, sleep store, frontier) no longer fits. Halt
      // gracefully; the driver checkpoints before returning.
      if (wt != nullptr) {
        wt->record_event(util::FlightEvent::Kind::kWatchdog, bytes,
                         "ladder_exhausted");
      }
      return LimitReason::kMemory;
    }
    // Memo contents are count-invisible — halving them only costs
    // recomputation time. Budgets below 1 MiB go straight to zero.
    const auto next = [](std::uint64_t b) {
      return b >= (2ULL << 20) ? b / 2 : 0;
    };
    if (fp_memo_ != nullptr) fp_memo_->shrink_to(next(fp_b));
    if (disc_memo_ != nullptr) disc_memo_->shrink_to(next(disc_b));
    ++memo_shrinks_;
    bytes = core.resident_bytes(frontier_nodes);
    watchdog_bytes_ = bytes;
    if (wt != nullptr) {
      wt->record_event(util::FlightEvent::Kind::kWatchdog, bytes,
                       "shrink_memos");
    }
  }
  return LimitReason::kNone;
}

void Durability::fill(CheckerResult& result) const {
  result.durability.checkpoints_written = checkpoints_written_;
  result.durability.checkpoint_bytes = checkpoint_bytes_;
  result.durability.resumed = result.durability.resumed || resumed_;
  result.durability.memo_shrinks = memo_shrinks_;
  result.durability.watchdog_bytes = watchdog_bytes_;
}

// ---- SearchCore accounting hook -------------------------------------------

std::uint64_t SearchCore::resident_bytes(std::uint64_t frontier_nodes) const {
  std::uint64_t bytes = seen_.store_bytes();
  if (collapse_ != nullptr) bytes += collapse_->interned_bytes();
  if (reducer_ != nullptr) bytes += reducer_->store().store_bytes();
  if (fp_memo_ != nullptr) bytes += fp_memo_->stats().bytes;
  if (disc_memo_ != nullptr) {
    bytes += disc_memo_->packet_stats().bytes;
    bytes += disc_memo_->stats_stats().bytes;
  }
  return bytes + frontier_nodes * kFrontierNodeBytes;
}

}  // namespace nicemc::mc
