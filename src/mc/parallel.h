// Multi-threaded exploration drivers built on SearchCore.
//
// run_parallel: N workers pull SearchNodes from one shared work deque
// (LIFO, for DFS-like locality), expand them through the shared SearchCore
// (lock-striped seen-set, per-worker discovery caches), and publish
// progress through atomic counters. On exhaustive runs the result is
// count-equivalent to the single-threaded search: same unique states, same
// transitions/revisits/quiescent counts, same violation set modulo
// path-dependent packet copy-ids in the messages (when several
// interleavings reach the same canonical state, the thread that wins the
// seen-set insert reports its own path's packet uids) — and the order of
// violations differs. Under CheckerOptions::reduction the driver keeps
// the soundness contract (same unique states, same violation set, ≤
// transitions of the unreduced run); exact transition counts become
// schedule-dependent because which arrival claims a sleep re-expansion
// races (see mc/por/sleep.h). kSourceDpor composes the same way: sleep
// sets, wake lists and conditional entries all ride on SearchNode, the
// wakeup trees live in the lock-striped SleepStore, and replay
// activation (a re-expanded child winning a first arrival) is just
// another schedule-dependent claim — parallel runs can activate replays
// a sequential DFS never would, and stay count-equivalent on states.
//
// run_random_walk_portfolio: the simulator mode as a portfolio — each
// worker runs an independent share of the walks with its own seeded RNG,
// all publishing into the shared seen-set.
#ifndef NICE_MC_PARALLEL_H
#define NICE_MC_PARALLEL_H

#include <cstdint>

#include "mc/search_core.h"

namespace nicemc::mc {

/// Exhaustive (bounded) search with `threads` workers. `threads` is
/// clamped to at least 1; with 1 it still runs the shared-deque driver on
/// the calling thread (prefer SearchCore::run_sequential for determinism).
/// `dur` (optional) enables the durability layer: resume seeding, periodic
/// checkpoints behind a quiesce barrier (workers drain before the snapshot
/// is taken), a final at-halt checkpoint, the memory watchdog, and
/// cooperative interrupts.
CheckerResult run_parallel(const SearchCore& core, unsigned threads,
                           Durability* dur = nullptr);

/// `walks` random walks split across `threads` workers; worker w takes
/// walks w, w+threads, ... and draws from its own SplitMix64 stream
/// derived from `seed`, so a given (seed, threads) pair is reproducible.
CheckerResult run_random_walk_portfolio(const SearchCore& core,
                                        unsigned threads,
                                        std::uint64_t seed, int walks,
                                        int max_steps);

}  // namespace nicemc::mc

#endif  // NICE_MC_PARALLEL_H
