#include "mc/frontier.h"

#include <deque>
#include <utility>
#include <vector>

#include "util/hash.h"

namespace nicemc::mc {

namespace {

class DfsFrontier final : public Frontier {
 public:
  void push(SearchNode node) override { stack_.push_back(std::move(node)); }

  bool pop(SearchNode& out) override {
    if (stack_.empty()) return false;
    out = std::move(stack_.back());
    stack_.pop_back();
    return true;
  }

  [[nodiscard]] bool empty() const override { return stack_.empty(); }
  [[nodiscard]] std::size_t size() const override { return stack_.size(); }

  void for_each(
      const std::function<void(const SearchNode&)>& fn) const override {
    // Bottom-to-top: re-pushing in this order rebuilds the same stack.
    for (const SearchNode& n : stack_) fn(n);
  }

 private:
  std::vector<SearchNode> stack_;
};

class BfsFrontier final : public Frontier {
 public:
  void push(SearchNode node) override { queue_.push_back(std::move(node)); }

  bool pop(SearchNode& out) override {
    if (queue_.empty()) return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    return true;
  }

  [[nodiscard]] bool empty() const override { return queue_.empty(); }
  [[nodiscard]] std::size_t size() const override { return queue_.size(); }

  void for_each(
      const std::function<void(const SearchNode&)>& fn) const override {
    // Front-to-back: re-pushing in this order rebuilds the same queue.
    for (const SearchNode& n : queue_) fn(n);
  }

 private:
  std::deque<SearchNode> queue_;
};

/// Pops a uniformly random pending entry by swapping it with the back —
/// O(1) per pop, and deterministic for a fixed seed and push sequence.
class RandomFrontier final : public Frontier {
 public:
  explicit RandomFrontier(std::uint64_t seed) : rng_(seed) {}

  void push(SearchNode node) override { pool_.push_back(std::move(node)); }

  bool pop(SearchNode& out) override {
    if (pool_.empty()) return false;
    const std::size_t i =
        static_cast<std::size_t>(rng_.next_below(pool_.size()));
    if (i != pool_.size() - 1) std::swap(pool_[i], pool_.back());
    out = std::move(pool_.back());
    pool_.pop_back();
    return true;
  }

  [[nodiscard]] bool empty() const override { return pool_.empty(); }
  [[nodiscard]] std::size_t size() const override { return pool_.size(); }

  void for_each(
      const std::function<void(const SearchNode&)>& fn) const override {
    // Pool order + the saved RNG state reproduce the same pop sequence.
    for (const SearchNode& n : pool_) fn(n);
  }

  [[nodiscard]] std::uint64_t rng_state() const override {
    return rng_.state();
  }
  void set_rng_state(std::uint64_t state) override { rng_.set_state(state); }

 private:
  util::SplitMix64 rng_;
  std::vector<SearchNode> pool_;
};

}  // namespace

std::string frontier_name(FrontierKind kind) {
  switch (kind) {
    case FrontierKind::kDfs:
      return "dfs";
    case FrontierKind::kBfs:
      return "bfs";
    case FrontierKind::kRandom:
      return "random";
  }
  return "unknown";
}

std::unique_ptr<Frontier> make_frontier(FrontierKind kind,
                                        std::uint64_t seed) {
  switch (kind) {
    case FrontierKind::kBfs:
      return std::make_unique<BfsFrontier>();
    case FrontierKind::kRandom:
      return std::make_unique<RandomFrontier>(seed);
    case FrontierKind::kDfs:
      break;
  }
  return std::make_unique<DfsFrontier>();
}

}  // namespace nicemc::mc
