#include "sym/solver.h"

#include <cassert>

#include "sym/bitblast.h"
#include "sym/sat.h"

namespace nicemc::sym {

std::optional<Model> Solver::solve(std::span<const ExprRef> conjuncts) {
  ++stats_.queries;
  SatSolver sat;
  BitBlaster blaster(arena_, sat);
  for (ExprRef c : conjuncts) {
    assert(arena_.node(c).width == 1 && "constraints must be width-1");
    sat.add_unit(blaster.bit1(c));
  }
  stats_.clauses_total += sat.num_clauses();
  stats_.sat_vars_total += sat.num_vars();
  if (sat.solve() == SatResult::kUnsat) {
    ++stats_.unsat;
    return std::nullopt;
  }
  ++stats_.sat;
  Model model;
  for (const auto& [var, lits] : blaster.input_bits()) {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < lits.size(); ++i) {
      const bool bit = sat.model_value(lit_var(lits[i])) != lit_sign(lits[i]);
      if (bit) v |= (1ULL << i);
    }
    model[var] = v;
  }
  return model;
}

}  // namespace nicemc::sym
