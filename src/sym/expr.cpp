#include "sym/expr.h"

#include <cassert>

#include "util/hash.h"
#include "util/strings.h"

namespace nicemc::sym {

namespace {

bool is_commutative(Op op) {
  switch (op) {
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kAdd:
    case Op::kEq:
    case Op::kNe:
      return true;
    default:
      return false;
  }
}

std::uint64_t fold_bin(Op op, std::uint64_t a, std::uint64_t b, unsigned w) {
  const std::uint64_t m = width_mask(w);
  switch (op) {
    case Op::kAnd:
      return a & b;
    case Op::kOr:
      return a | b;
    case Op::kXor:
      return a ^ b;
    case Op::kAdd:
      return (a + b) & m;
    case Op::kSub:
      return (a - b) & m;
    default:
      assert(false && "not a foldable binary op");
      return 0;
  }
}

std::uint64_t fold_cmp(Op op, std::uint64_t a, std::uint64_t b) {
  switch (op) {
    case Op::kEq:
      return a == b ? 1 : 0;
    case Op::kNe:
      return a != b ? 1 : 0;
    case Op::kUlt:
      return a < b ? 1 : 0;
    case Op::kUle:
      return a <= b ? 1 : 0;
    default:
      assert(false && "not a comparison op");
      return 0;
  }
}

}  // namespace

std::size_t ExprArena::NodeHash::operator()(const Node& n) const noexcept {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  h = util::hash_combine(h, static_cast<std::uint64_t>(n.op));
  h = util::hash_combine(h, n.width);
  h = util::hash_combine(h, n.a);
  h = util::hash_combine(h, n.b);
  h = util::hash_combine(h, n.c);
  h = util::hash_combine(h, n.aux);
  return static_cast<std::size_t>(h);
}

ExprArena::ExprArena() {
  nodes_.reserve(256);
}

ExprRef ExprArena::intern(Node n) {
  auto [it, inserted] =
      cons_.try_emplace(n, static_cast<ExprRef>(nodes_.size()));
  if (inserted) nodes_.push_back(n);
  return it->second;
}

ExprRef ExprArena::constant(std::uint64_t v, unsigned width) {
  assert(width >= 1 && width <= 64);
  return intern(Node{.op = Op::kConst,
                     .width = static_cast<std::uint8_t>(width),
                     .aux = v & width_mask(width)});
}

ExprRef ExprArena::var(VarId id, unsigned width) {
  assert(width >= 1 && width <= 64);
  return intern(Node{.op = Op::kVar,
                     .width = static_cast<std::uint8_t>(width),
                     .aux = id});
}

ExprRef ExprArena::bin(Op op, ExprRef a, ExprRef b) {
  const Node& na = node(a);
  const Node& nb = node(b);
  assert(na.width == nb.width && "operand width mismatch");
  const unsigned w = na.width;
  if (na.op == Op::kConst && nb.op == Op::kConst) {
    return constant(fold_bin(op, na.aux, nb.aux, w), w);
  }
  // Identity simplifications keep path conditions small.
  if (nb.op == Op::kConst) {
    if ((op == Op::kOr || op == Op::kXor || op == Op::kAdd ||
         op == Op::kSub) &&
        nb.aux == 0) {
      return a;
    }
    if (op == Op::kAnd && nb.aux == width_mask(w)) return a;
    if (op == Op::kAnd && nb.aux == 0) return constant(0, w);
  }
  if (na.op == Op::kConst) {
    if ((op == Op::kOr || op == Op::kXor || op == Op::kAdd) && na.aux == 0) {
      return b;
    }
    if (op == Op::kAnd && na.aux == width_mask(w)) return b;
    if (op == Op::kAnd && na.aux == 0) return constant(0, w);
  }
  if (is_commutative(op) && a > b) std::swap(a, b);
  return intern(Node{.op = op,
                     .width = static_cast<std::uint8_t>(w),
                     .a = a,
                     .b = b});
}

ExprRef ExprArena::cmp(Op op, ExprRef a, ExprRef b) {
  const Node& na = node(a);
  const Node& nb = node(b);
  assert(na.width == nb.width && "operand width mismatch");
  if (na.op == Op::kConst && nb.op == Op::kConst) {
    return constant(fold_cmp(op, na.aux, nb.aux), 1);
  }
  if (a == b) {
    switch (op) {
      case Op::kEq:
      case Op::kUle:
        return constant(1, 1);
      case Op::kNe:
      case Op::kUlt:
        return constant(0, 1);
      default:
        break;
    }
  }
  if (is_commutative(op) && a > b) std::swap(a, b);
  return intern(Node{.op = op, .width = 1, .a = a, .b = b});
}

ExprRef ExprArena::not_of(ExprRef a) {
  const Node& na = node(a);
  if (na.op == Op::kConst) {
    return constant(~na.aux & width_mask(na.width), na.width);
  }
  if (na.op == Op::kNot) return na.a;  // double negation
  // Push negation through comparisons: !(a == b) → (a != b), etc. This only
  // applies on width-1 results and keeps CNF small.
  if (na.width == 1) {
    switch (na.op) {
      case Op::kEq:
        return cmp(Op::kNe, na.a, na.b);
      case Op::kNe:
        return cmp(Op::kEq, na.a, na.b);
      case Op::kUlt:
        return cmp(Op::kUle, na.b, na.a);
      case Op::kUle:
        return cmp(Op::kUlt, na.b, na.a);
      default:
        break;
    }
  }
  return intern(Node{.op = Op::kNot, .width = na.width, .a = a});
}

ExprRef ExprArena::shl(ExprRef a, unsigned amount) {
  const Node& na = node(a);
  if (amount == 0) return a;
  if (na.op == Op::kConst) {
    const std::uint64_t v =
        amount >= na.width ? 0 : (na.aux << amount) & width_mask(na.width);
    return constant(v, na.width);
  }
  return intern(Node{.op = Op::kShl, .width = na.width, .a = a,
                     .aux = amount});
}

ExprRef ExprArena::lshr(ExprRef a, unsigned amount) {
  const Node& na = node(a);
  if (amount == 0) return a;
  if (na.op == Op::kConst) {
    const std::uint64_t v = amount >= na.width ? 0 : (na.aux >> amount);
    return constant(v, na.width);
  }
  return intern(Node{.op = Op::kLshr, .width = na.width, .a = a,
                     .aux = amount});
}

ExprRef ExprArena::extract(ExprRef a, unsigned low, unsigned width) {
  const Node& na = node(a);
  assert(low + width <= na.width);
  if (low == 0 && width == na.width) return a;
  if (na.op == Op::kConst) return constant(na.aux >> low, width);
  return intern(Node{.op = Op::kExtract,
                     .width = static_cast<std::uint8_t>(width),
                     .a = a,
                     .aux = low});
}

ExprRef ExprArena::zext(ExprRef a, unsigned width) {
  const Node& na = node(a);
  assert(width >= na.width);
  if (width == na.width) return a;
  if (na.op == Op::kConst) return constant(na.aux, width);
  return intern(Node{.op = Op::kZext,
                     .width = static_cast<std::uint8_t>(width),
                     .a = a});
}

ExprRef ExprArena::ite(ExprRef cond, ExprRef then_e, ExprRef else_e) {
  const Node& nc = node(cond);
  assert(nc.width == 1);
  assert(node(then_e).width == node(else_e).width);
  if (nc.op == Op::kConst) return nc.aux ? then_e : else_e;
  if (then_e == else_e) return then_e;
  return intern(Node{.op = Op::kIte,
                     .width = node(then_e).width,
                     .a = cond,
                     .b = then_e,
                     .c = else_e});
}

ExprRef ExprArena::any_of(ExprRef v,
                          std::span<const std::uint64_t> candidates) {
  const unsigned w = node(v).width;
  ExprRef acc = constant(0, 1);
  for (std::uint64_t c : candidates) {
    acc = bin(Op::kOr, acc, cmp(Op::kEq, v, constant(c, w)));
  }
  return acc;
}

ExprRef ExprArena::all_of(std::span<const ExprRef> conjuncts) {
  ExprRef acc = constant(1, 1);
  for (ExprRef c : conjuncts) acc = bin(Op::kAnd, acc, c);
  return acc;
}

std::uint64_t ExprArena::eval(
    ExprRef r, const std::vector<std::uint64_t>& var_values) const {
  const Node& n = node(r);
  const std::uint64_t m = width_mask(n.width);
  switch (n.op) {
    case Op::kConst:
      return n.aux;
    case Op::kVar:
      return (n.aux < var_values.size() ? var_values[n.aux] : 0) & m;
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kAdd:
    case Op::kSub:
      return fold_bin(n.op, eval(n.a, var_values), eval(n.b, var_values),
                      n.width);
    case Op::kNot:
      return ~eval(n.a, var_values) & m;
    case Op::kShl: {
      const std::uint64_t v = eval(n.a, var_values);
      return n.aux >= n.width ? 0 : (v << n.aux) & m;
    }
    case Op::kLshr: {
      const std::uint64_t v = eval(n.a, var_values);
      return n.aux >= n.width ? 0 : v >> n.aux;
    }
    case Op::kEq:
    case Op::kNe:
    case Op::kUlt:
    case Op::kUle:
      return fold_cmp(n.op, eval(n.a, var_values), eval(n.b, var_values));
    case Op::kIte:
      return eval(n.a, var_values) ? eval(n.b, var_values)
                                   : eval(n.c, var_values);
    case Op::kExtract:
      return (eval(n.a, var_values) >> n.aux) & m;
    case Op::kZext:
      return eval(n.a, var_values);
  }
  return 0;
}

void ExprArena::collect_vars(ExprRef r, std::set<VarId>& out) const {
  const Node& n = node(r);
  if (n.op == Op::kVar) {
    out.insert(static_cast<VarId>(n.aux));
    return;
  }
  if (n.a != kNilExpr) collect_vars(n.a, out);
  if (n.b != kNilExpr) collect_vars(n.b, out);
  if (n.c != kNilExpr) collect_vars(n.c, out);
}

std::string ExprArena::to_string(ExprRef r) const {
  const Node& n = node(r);
  auto name = [](Op op) -> const char* {
    switch (op) {
      case Op::kConst: return "const";
      case Op::kVar: return "var";
      case Op::kAnd: return "and";
      case Op::kOr: return "or";
      case Op::kXor: return "xor";
      case Op::kNot: return "not";
      case Op::kAdd: return "add";
      case Op::kSub: return "sub";
      case Op::kShl: return "shl";
      case Op::kLshr: return "lshr";
      case Op::kEq: return "eq";
      case Op::kNe: return "ne";
      case Op::kUlt: return "ult";
      case Op::kUle: return "ule";
      case Op::kIte: return "ite";
      case Op::kExtract: return "extract";
      case Op::kZext: return "zext";
    }
    return "?";
  };
  switch (n.op) {
    case Op::kConst:
      return "0x" + util::hex_u64(n.aux, (n.width + 3) / 4);
    case Op::kVar:
      return "v" + std::to_string(n.aux) + ":" + std::to_string(n.width);
    default: {
      std::string s = "(";
      s += name(n.op);
      if (n.op == Op::kShl || n.op == Op::kLshr || n.op == Op::kExtract) {
        s += " " + std::to_string(n.aux);
      }
      if (n.a != kNilExpr) s += " " + to_string(n.a);
      if (n.b != kNilExpr) s += " " + to_string(n.b);
      if (n.c != kNilExpr) s += " " + to_string(n.c);
      s += ")";
      return s;
    }
  }
}

}  // namespace nicemc::sym
