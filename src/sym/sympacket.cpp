#include "sym/sympacket.h"

namespace nicemc::sym {

SymPacket SymPacket::concrete(const PacketFields& f) {
  SymPacket p;
  p.eth_src = Value(f.eth_src, kEthAddrBits);
  p.eth_dst = Value(f.eth_dst, kEthAddrBits);
  p.eth_type = Value(f.eth_type, kEthTypeBits);
  p.ip_src = Value(f.ip_src, kIpAddrBits);
  p.ip_dst = Value(f.ip_dst, kIpAddrBits);
  p.ip_proto = Value(f.ip_proto, kIpProtoBits);
  p.tp_src = Value(f.tp_src, kTpPortBits);
  p.tp_dst = Value(f.tp_dst, kTpPortBits);
  p.tcp_flags = Value(f.tcp_flags, kTcpFlagsBits);
  return p;
}

SymPacketVars SymPacketVars::register_with(Concolic& engine,
                                           const PacketFields& initial) {
  SymPacketVars v;
  v.eth_src = engine.add_var("eth_src", kEthAddrBits, initial.eth_src);
  v.eth_dst = engine.add_var("eth_dst", kEthAddrBits, initial.eth_dst);
  v.eth_type = engine.add_var("eth_type", kEthTypeBits, initial.eth_type);
  v.ip_src = engine.add_var("ip_src", kIpAddrBits, initial.ip_src);
  v.ip_dst = engine.add_var("ip_dst", kIpAddrBits, initial.ip_dst);
  v.ip_proto = engine.add_var("ip_proto", kIpProtoBits, initial.ip_proto);
  v.tp_src = engine.add_var("tp_src", kTpPortBits, initial.tp_src);
  v.tp_dst = engine.add_var("tp_dst", kTpPortBits, initial.tp_dst);
  v.tcp_flags = engine.add_var("tcp_flags", kTcpFlagsBits, initial.tcp_flags);
  return v;
}

SymPacket SymPacketVars::bind(const Inputs& in) const {
  SymPacket p;
  p.eth_src = in[eth_src];
  p.eth_dst = in[eth_dst];
  p.eth_type = in[eth_type];
  p.ip_src = in[ip_src];
  p.ip_dst = in[ip_dst];
  p.ip_proto = in[ip_proto];
  p.tp_src = in[tp_src];
  p.tp_dst = in[tp_dst];
  p.tcp_flags = in[tcp_flags];
  return p;
}

PacketFields SymPacketVars::materialize(const Assignment& asg) const {
  PacketFields f;
  f.eth_src = asg[eth_src.id];
  f.eth_dst = asg[eth_dst.id];
  f.eth_type = asg[eth_type.id];
  f.ip_src = asg[ip_src.id];
  f.ip_dst = asg[ip_dst.id];
  f.ip_proto = asg[ip_proto.id];
  f.tp_src = asg[tp_src.id];
  f.tp_dst = asg[tp_dst.id];
  f.tcp_flags = asg[tcp_flags.id];
  return f;
}

void PacketDomain::apply(Concolic& engine, const SymPacketVars& vars) const {
  if (!eth_addrs.empty()) {
    engine.restrict_to(vars.eth_src, eth_addrs);
    engine.restrict_to(vars.eth_dst, eth_addrs);
  }
  if (!eth_types.empty()) engine.restrict_to(vars.eth_type, eth_types);
  if (!ip_addrs.empty()) {
    engine.restrict_to(vars.ip_src, ip_addrs);
    engine.restrict_to(vars.ip_dst, ip_addrs);
  }
  if (!ip_protos.empty()) engine.restrict_to(vars.ip_proto, ip_protos);
  if (!tp_ports.empty()) {
    engine.restrict_to(vars.tp_src, tp_ports);
    engine.restrict_to(vars.tp_dst, tp_ports);
  }
  if (!tcp_flag_values.empty()) {
    engine.restrict_to(vars.tcp_flags, tcp_flag_values);
  }
}

}  // namespace nicemc::sym
