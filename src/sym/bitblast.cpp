#include "sym/bitblast.h"

#include <cassert>

namespace nicemc::sym {

BitBlaster::BitBlaster(const ExprArena& arena, SatSolver& sat)
    : arena_(arena), sat_(sat) {
  const SatVar t = sat_.new_var();
  true_lit_ = make_lit(t, false);
  sat_.add_unit(true_lit_);
}

Lit BitBlaster::fresh() { return make_lit(sat_.new_var(), false); }

Lit BitBlaster::land(Lit a, Lit b) {
  if (is_const(a)) return const_value(a) ? b : false_lit();
  if (is_const(b)) return const_value(b) ? a : false_lit();
  if (a == b) return a;
  if (a == lit_neg(b)) return false_lit();
  const Lit y = fresh();
  sat_.add_binary(lit_neg(y), a);
  sat_.add_binary(lit_neg(y), b);
  sat_.add_ternary(y, lit_neg(a), lit_neg(b));
  return y;
}

Lit BitBlaster::lor(Lit a, Lit b) {
  return lit_neg(land(lit_neg(a), lit_neg(b)));
}

Lit BitBlaster::lxor(Lit a, Lit b) {
  if (is_const(a)) return const_value(a) ? lit_neg(b) : b;
  if (is_const(b)) return const_value(b) ? lit_neg(a) : a;
  if (a == b) return false_lit();
  if (a == lit_neg(b)) return true_lit();
  const Lit y = fresh();
  sat_.add_ternary(lit_neg(y), a, b);
  sat_.add_ternary(lit_neg(y), lit_neg(a), lit_neg(b));
  sat_.add_ternary(y, lit_neg(a), b);
  sat_.add_ternary(y, a, lit_neg(b));
  return y;
}

Lit BitBlaster::lmux(Lit sel, Lit then_l, Lit else_l) {
  if (is_const(sel)) return const_value(sel) ? then_l : else_l;
  if (then_l == else_l) return then_l;
  const Lit y = fresh();
  // sel → (y ↔ then), ¬sel → (y ↔ else)
  sat_.add_ternary(lit_neg(sel), lit_neg(then_l), y);
  sat_.add_ternary(lit_neg(sel), then_l, lit_neg(y));
  sat_.add_ternary(sel, lit_neg(else_l), y);
  sat_.add_ternary(sel, else_l, lit_neg(y));
  return y;
}

const std::vector<Lit>& BitBlaster::bits(ExprRef e) {
  auto it = memo_.find(e);
  if (it != memo_.end()) return it->second;
  auto [ins, _] = memo_.emplace(e, blast(e));
  return ins->second;
}

Lit BitBlaster::bit1(ExprRef e) {
  assert(arena_.node(e).width == 1);
  return bits(e)[0];
}

std::vector<Lit> BitBlaster::blast(ExprRef e) {
  const Node& n = arena_.node(e);
  const unsigned w = n.width;
  std::vector<Lit> out;
  out.reserve(w);
  switch (n.op) {
    case Op::kConst: {
      for (unsigned i = 0; i < w; ++i) {
        out.push_back((n.aux >> i) & 1 ? true_lit() : false_lit());
      }
      return out;
    }
    case Op::kVar: {
      auto it = inputs_.find(static_cast<VarId>(n.aux));
      if (it == inputs_.end()) {
        std::vector<Lit> vs;
        vs.reserve(w);
        for (unsigned i = 0; i < w; ++i) vs.push_back(fresh());
        it = inputs_.emplace(static_cast<VarId>(n.aux), std::move(vs)).first;
      }
      assert(it->second.size() == w && "variable width mismatch");
      return it->second;
    }
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor: {
      const auto& a = bits(n.a);
      const auto& b = bits(n.b);
      for (unsigned i = 0; i < w; ++i) {
        out.push_back(n.op == Op::kAnd   ? land(a[i], b[i])
                      : n.op == Op::kOr  ? lor(a[i], b[i])
                                         : lxor(a[i], b[i]));
      }
      return out;
    }
    case Op::kNot: {
      const auto& a = bits(n.a);
      for (unsigned i = 0; i < w; ++i) out.push_back(lit_neg(a[i]));
      return out;
    }
    case Op::kAdd:
    case Op::kSub: {
      const auto& a = bits(n.a);
      const auto bsrc = bits(n.b);  // copy: bits() may rehash memo_
      // a - b == a + ~b + 1.
      Lit carry = n.op == Op::kSub ? true_lit() : false_lit();
      for (unsigned i = 0; i < w; ++i) {
        const Lit bi = n.op == Op::kSub ? lit_neg(bsrc[i]) : bsrc[i];
        const Lit axb = lxor(a[i], bi);
        out.push_back(lxor(axb, carry));
        carry = lor(land(a[i], bi), land(axb, carry));
      }
      return out;
    }
    case Op::kEq:
    case Op::kNe: {
      const auto a = bits(n.a);
      const auto b = bits(n.b);
      Lit acc = true_lit();
      for (std::size_t i = 0; i < a.size(); ++i) {
        acc = land(acc, lit_neg(lxor(a[i], b[i])));
      }
      out.push_back(n.op == Op::kEq ? acc : lit_neg(acc));
      return out;
    }
    case Op::kUlt:
    case Op::kUle: {
      const auto a = bits(n.a);
      const auto b = bits(n.b);
      // Scan LSB→MSB: lt := (a_i < b_i) if bits differ else carry previous.
      Lit lt = n.op == Op::kUle ? true_lit() : false_lit();  // a==b base case
      // For kUle the base case "all bits equal" yields true; for kUlt false.
      for (std::size_t i = 0; i < a.size(); ++i) {
        const Lit differ = lxor(a[i], b[i]);
        const Lit ai_lt_bi = land(lit_neg(a[i]), b[i]);
        lt = lmux(differ, ai_lt_bi, lt);
      }
      out.push_back(lt);
      return out;
    }
    case Op::kIte: {
      const Lit sel = bit1(n.a);
      const auto t = bits(n.b);
      const auto f = bits(n.c);
      for (unsigned i = 0; i < w; ++i) out.push_back(lmux(sel, t[i], f[i]));
      return out;
    }
    case Op::kShl: {
      const auto& a = bits(n.a);
      const auto k = static_cast<unsigned>(n.aux);
      for (unsigned i = 0; i < w; ++i) {
        out.push_back(i < k ? false_lit() : a[i - k]);
      }
      return out;
    }
    case Op::kLshr: {
      const auto& a = bits(n.a);
      const auto k = static_cast<unsigned>(n.aux);
      for (unsigned i = 0; i < w; ++i) {
        out.push_back(i + k < a.size() ? a[i + k] : false_lit());
      }
      return out;
    }
    case Op::kExtract: {
      const auto& a = bits(n.a);
      const auto lo = static_cast<unsigned>(n.aux);
      for (unsigned i = 0; i < w; ++i) out.push_back(a[lo + i]);
      return out;
    }
    case Op::kZext: {
      const auto& a = bits(n.a);
      for (unsigned i = 0; i < w; ++i) {
        out.push_back(i < a.size() ? a[i] : false_lit());
      }
      return out;
    }
  }
  assert(false && "unhandled op in bit-blaster");
  return out;
}

}  // namespace nicemc::sym
