// Hash-consed bit-vector expression DAG.
//
// This is the constraint language of NICE's symbolic packets (paper
// Section 3.2): packet header fields are fixed-width unsigned integers
// (MAC 48, IP 32, ports 16, ...), and event handlers branch on equality,
// ordering, and bit tests over them. Expressions are immutable nodes in an
// arena; structurally identical nodes are shared (hash-consing), which keeps
// path conditions compact when the same sub-expressions recur across
// branches of a handler.
#ifndef NICE_SYM_EXPR_H
#define NICE_SYM_EXPR_H

#include <cstdint>
#include <set>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace nicemc::sym {

/// Index of a node inside its ExprArena.
using ExprRef = std::uint32_t;
inline constexpr ExprRef kNilExpr = 0xffffffffu;

/// Identifier of a symbolic input variable (assigned by the concolic engine).
using VarId = std::uint32_t;

enum class Op : std::uint8_t {
  kConst,    // aux = value
  kVar,      // aux = VarId
  kAnd,      // bitwise; on width-1 this is logical AND
  kOr,
  kXor,
  kNot,
  kAdd,
  kSub,
  kShl,      // aux = shift amount (constant)
  kLshr,     // aux = shift amount (constant)
  kEq,       // width-1 result
  kNe,
  kUlt,      // unsigned <
  kUle,      // unsigned <=
  kIte,      // a = cond (width 1), b = then, c = else
  kExtract,  // aux = low bit; node width = extracted width
  kZext,     // zero-extend a to node width
};

struct Node {
  Op op{Op::kConst};
  std::uint8_t width{0};  // result width in bits, 1..64
  ExprRef a{kNilExpr};
  ExprRef b{kNilExpr};
  ExprRef c{kNilExpr};
  std::uint64_t aux{0};

  friend bool operator==(const Node&, const Node&) = default;
};

/// All-ones mask for a width in [1, 64].
constexpr std::uint64_t width_mask(unsigned w) noexcept {
  return w >= 64 ? ~0ULL : ((1ULL << w) - 1);
}

/// Arena of hash-consed expression nodes. One arena lives per concolic
/// discovery session; ExprRefs are only meaningful relative to their arena.
class ExprArena {
 public:
  ExprArena();

  ExprRef constant(std::uint64_t v, unsigned width);
  ExprRef var(VarId id, unsigned width);

  /// Binary bitwise/arithmetic op (kAnd/kOr/kXor/kAdd/kSub). Both operands
  /// must have equal width; the result has the same width. Folds constants
  /// and normalizes commutative operand order.
  ExprRef bin(Op op, ExprRef a, ExprRef b);

  /// Comparison (kEq/kNe/kUlt/kUle); operands equal width, result width 1.
  ExprRef cmp(Op op, ExprRef a, ExprRef b);

  ExprRef not_of(ExprRef a);
  ExprRef shl(ExprRef a, unsigned amount);
  ExprRef lshr(ExprRef a, unsigned amount);
  ExprRef extract(ExprRef a, unsigned low, unsigned width);
  ExprRef zext(ExprRef a, unsigned width);
  ExprRef ite(ExprRef cond, ExprRef then_e, ExprRef else_e);

  /// Disjunction of equalities: v ∈ {candidates...}. Used for the
  /// domain-knowledge constraints of Section 3.2 (restrict header fields to
  /// addresses that exist in the topology, plus broadcast / fresh values).
  ExprRef any_of(ExprRef v, std::span<const std::uint64_t> candidates);

  /// Logical AND of a conjunct list (width-1 exprs); true for empty list.
  ExprRef all_of(std::span<const ExprRef> conjuncts);

  [[nodiscard]] const Node& node(ExprRef r) const { return nodes_[r]; }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

  /// Evaluate under a variable assignment (indexed by VarId; missing ids
  /// evaluate as 0). Used to validate solver models and in tests.
  [[nodiscard]] std::uint64_t eval(
      ExprRef r, const std::vector<std::uint64_t>& var_values) const;

  /// All VarIds appearing under r.
  void collect_vars(ExprRef r, std::set<VarId>& out) const;

  /// Debug rendering, e.g. "(eq v0:48 0xffffffffffff)".
  [[nodiscard]] std::string to_string(ExprRef r) const;

 private:
  struct NodeHash {
    std::size_t operator()(const Node& n) const noexcept;
  };

  ExprRef intern(Node n);

  std::vector<Node> nodes_;
  std::unordered_map<Node, ExprRef, NodeHash> cons_;
};

}  // namespace nicemc::sym

#endif  // NICE_SYM_EXPR_H
