#include "sym/value.h"

namespace nicemc::sym {

thread_local Tracer* Tracer::current_ = nullptr;

namespace {

/// Expression for an operand, materializing a constant node when the
/// operand is concrete. Only called when a tracer is active.
ExprRef expr_of(const Value& v, ExprArena& arena) {
  if (v.symbolic()) return v.expr();
  return arena.constant(v.concrete(), v.width());
}

/// True when a symbolic expression should be produced: at least one operand
/// symbolic and a tracer (hence arena) available.
bool want_symbolic(const Value& a, const Value& b) {
  return (a.symbolic() || b.symbolic()) && Tracer::current() != nullptr;
}

Value make_bin(Op op, const Value& a, const Value& b) {
  assert(a.width() == b.width() && "operand width mismatch");
  const unsigned w = a.width();
  std::uint64_t c = 0;
  switch (op) {
    case Op::kAnd: c = a.concrete() & b.concrete(); break;
    case Op::kOr: c = a.concrete() | b.concrete(); break;
    case Op::kXor: c = a.concrete() ^ b.concrete(); break;
    case Op::kAdd: c = a.concrete() + b.concrete(); break;
    case Op::kSub: c = a.concrete() - b.concrete(); break;
    default: assert(false);
  }
  if (!want_symbolic(a, b)) return Value(c, w);
  ExprArena& ar = Tracer::current()->arena();
  return Value(c, w, ar.bin(op, expr_of(a, ar), expr_of(b, ar)));
}

Bool make_cmp(Op op, const Value& a, const Value& b) {
  assert(a.width() == b.width() && "operand width mismatch");
  bool c = false;
  switch (op) {
    case Op::kEq: c = a.concrete() == b.concrete(); break;
    case Op::kNe: c = a.concrete() != b.concrete(); break;
    case Op::kUlt: c = a.concrete() < b.concrete(); break;
    case Op::kUle: c = a.concrete() <= b.concrete(); break;
    default: assert(false);
  }
  if (!want_symbolic(a, b)) return Bool(c);
  ExprArena& ar = Tracer::current()->arena();
  return Bool(c, ar.cmp(op, expr_of(a, ar), expr_of(b, ar)));
}

}  // namespace

Value Value::input(VarId id, unsigned width, std::uint64_t concrete) {
  Tracer* t = Tracer::current();
  assert(t != nullptr && "symbolic inputs require an active tracer");
  return Value(concrete, width, t->arena().var(id, width));
}

Value operator&(const Value& a, const Value& b) {
  return make_bin(Op::kAnd, a, b);
}
Value operator|(const Value& a, const Value& b) {
  return make_bin(Op::kOr, a, b);
}
Value operator^(const Value& a, const Value& b) {
  return make_bin(Op::kXor, a, b);
}
Value operator+(const Value& a, const Value& b) {
  return make_bin(Op::kAdd, a, b);
}
Value operator-(const Value& a, const Value& b) {
  return make_bin(Op::kSub, a, b);
}

Value Value::operator~() const {
  const std::uint64_t c = ~concrete_ & width_mask(width_);
  if (!symbolic() || Tracer::current() == nullptr) return Value(c, width_);
  return Value(c, width_, Tracer::current()->arena().not_of(expr_));
}

Value Value::shl(unsigned k) const {
  const std::uint64_t c =
      k >= width_ ? 0 : (concrete_ << k) & width_mask(width_);
  if (!symbolic() || Tracer::current() == nullptr) return Value(c, width_);
  return Value(c, width_, Tracer::current()->arena().shl(expr_, k));
}

Value Value::lshr(unsigned k) const {
  const std::uint64_t c = k >= width_ ? 0 : concrete_ >> k;
  if (!symbolic() || Tracer::current() == nullptr) return Value(c, width_);
  return Value(c, width_, Tracer::current()->arena().lshr(expr_, k));
}

Value Value::extract(unsigned low, unsigned width) const {
  assert(low + width <= width_);
  const std::uint64_t c = (concrete_ >> low) & width_mask(width);
  if (!symbolic() || Tracer::current() == nullptr) return Value(c, width);
  return Value(c, width,
               Tracer::current()->arena().extract(expr_, low, width));
}

Value Value::zext(unsigned width) const {
  assert(width >= width_);
  if (!symbolic() || Tracer::current() == nullptr) {
    return Value(concrete_, width);
  }
  return Value(concrete_, width, Tracer::current()->arena().zext(expr_, width));
}

Bool operator==(const Value& a, const Value& b) {
  return make_cmp(Op::kEq, a, b);
}
Bool operator!=(const Value& a, const Value& b) {
  return make_cmp(Op::kNe, a, b);
}
Bool operator<(const Value& a, const Value& b) {
  return make_cmp(Op::kUlt, a, b);
}
Bool operator<=(const Value& a, const Value& b) {
  return make_cmp(Op::kUle, a, b);
}

}  // namespace nicemc::sym
