#include "sym/concolic.h"

#include <cassert>

#include "util/hash.h"

namespace nicemc::sym {

namespace {

/// Signature of an executed path, for de-duplication.
std::uint64_t path_signature(const std::vector<BranchRecord>& path) {
  std::uint64_t h = 0x2545f4914f6cdd1dULL;
  for (const BranchRecord& b : path) {
    h = util::hash_combine(h, b.cond);
    h = util::hash_combine(h, b.taken ? 1 : 0);
  }
  return h;
}

std::uint64_t assignment_signature(const Assignment& asg) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t v : asg) h = util::hash_combine(h, v);
  return h;
}

}  // namespace

Concolic::Concolic(ConcolicConfig config) : config_(config) {}

VarHandle Concolic::add_var(std::string name, unsigned width,
                            std::uint64_t initial) {
  const VarId id = static_cast<VarId>(names_.size());
  names_.push_back(std::move(name));
  widths_.push_back(static_cast<std::uint8_t>(width));
  initial_.push_back(initial & width_mask(width));
  domains_.emplace_back();
  return VarHandle{id};
}

void Concolic::restrict_to(VarHandle h, std::vector<std::uint64_t> candidates) {
  assert(!candidates.empty());
  domains_[h.id] = std::move(candidates);
}

std::vector<ExprRef> Concolic::domain_constraints() {
  std::vector<ExprRef> out;
  for (VarId id = 0; id < domains_.size(); ++id) {
    if (domains_[id].empty()) continue;
    const ExprRef v = arena_.var(id, widths_[id]);
    out.push_back(arena_.any_of(v, domains_[id]));
  }
  return out;
}

std::vector<Assignment> Concolic::explore(const RunFn& fn) {
  std::vector<Assignment> results;
  std::deque<Pending> worklist;
  std::set<std::uint64_t> seen_paths;
  std::set<std::uint64_t> seen_assignments;

  worklist.push_back(Pending{initial_, 0});
  seen_assignments.insert(assignment_signature(initial_));

  const std::vector<ExprRef> domain = domain_constraints();
  Solver solver(arena_);

  while (!worklist.empty() &&
         static_cast<int>(results.size()) < config_.max_paths) {
    Pending cur = std::move(worklist.front());
    worklist.pop_front();

    // 1. Concrete run with branch tracing.
    Tracer tracer(arena_);
    Inputs inputs(widths_, cur.asg);
    {
      Tracer::Activation act(tracer);
      fn(inputs);
    }
    ++stats_.runs;

    const std::vector<BranchRecord>& path = tracer.path();
    if (!seen_paths.insert(path_signature(path)).second) continue;
    ++stats_.paths;
    results.push_back(cur.asg);

    // 2. Generational expansion: flip each branch at depth >= flip_from.
    const int flip_limit =
        std::min<int>(static_cast<int>(path.size()), config_.max_flip_depth);
    for (int d = cur.flip_from; d < flip_limit; ++d) {
      std::vector<ExprRef> query = domain;
      for (int i = 0; i < d; ++i) {
        query.push_back(path[i].taken ? path[i].cond
                                      : arena_.not_of(path[i].cond));
      }
      query.push_back(path[d].taken ? arena_.not_of(path[d].cond)
                                    : path[d].cond);

      ++stats_.solver_queries;
      const std::optional<Model> model = solver.solve(query);
      if (!model) continue;
      ++stats_.solver_sat;

      Assignment next = cur.asg;
      for (const auto& [var, value] : *model) {
        if (var < next.size()) next[var] = value;
      }
      if (seen_assignments.insert(assignment_signature(next)).second) {
        worklist.push_back(Pending{std::move(next), d + 1});
      }
    }
  }
  return results;
}

}  // namespace nicemc::sym
