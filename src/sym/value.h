// Concolic values: the C++ analogue of NICE's instrumented Python execution.
//
// A sym::Value carries a concrete fixed-width unsigned integer and,
// optionally, a symbolic expression describing it in terms of the symbolic
// inputs of the current discovery session. Comparisons yield sym::Bool; when
// a Bool is used in a branch (its operator bool), the ambient Tracer — if
// one is active — records the branch constraint together with the direction
// actually taken. This reproduces the paper's concolic execution
// (Section 6): concrete runs that collect path constraints as a side effect.
//
// Controller applications are written once against these types. Inside the
// model checker no tracer is active and all values are plain concrete
// integers; inside a discover_packets/discover_stats transition the tracer
// is active and the same handler code records its path condition.
#ifndef NICE_SYM_VALUE_H
#define NICE_SYM_VALUE_H

#include <cassert>
#include <cstdint>
#include <vector>

#include "sym/expr.h"

namespace nicemc::sym {

/// One recorded branch: the condition expression and the direction the
/// concrete execution took.
struct BranchRecord {
  ExprRef cond{kNilExpr};
  bool taken{false};

  friend bool operator==(const BranchRecord&, const BranchRecord&) = default;
};

/// Ambient branch recorder. At most one Tracer is active per thread;
/// activation is scoped (RAII). The concolic engine activates a tracer
/// around each handler run.
class Tracer {
 public:
  explicit Tracer(ExprArena& arena) : arena_(arena) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// RAII activation of a tracer as the thread-ambient one.
  class Activation {
   public:
    explicit Activation(Tracer& t) : prev_(current_) { current_ = &t; }
    ~Activation() { current_ = prev_; }
    Activation(const Activation&) = delete;
    Activation& operator=(const Activation&) = delete;

   private:
    Tracer* prev_;
  };

  static Tracer* current() noexcept { return current_; }

  void record_branch(ExprRef cond, bool taken) {
    path_.push_back(BranchRecord{cond, taken});
  }

  [[nodiscard]] ExprArena& arena() noexcept { return arena_; }
  [[nodiscard]] const std::vector<BranchRecord>& path() const noexcept {
    return path_;
  }
  void clear_path() noexcept { path_.clear(); }

 private:
  static thread_local Tracer* current_;

  ExprArena& arena_;
  std::vector<BranchRecord> path_;
};

/// Boolean result of a concolic comparison. Implicit conversion to bool
/// *records the branch* with the ambient tracer — this is the hook that
/// turns ordinary `if` statements in app code into path constraints.
class Bool {
 public:
  Bool(bool concrete) : concrete_(concrete) {}  // NOLINT: implicit by design
  Bool(bool concrete, ExprRef expr) : concrete_(concrete), expr_(expr) {}

  operator bool() const {  // NOLINT: implicit by design
    if (expr_ != kNilExpr) {
      if (Tracer* t = Tracer::current()) t->record_branch(expr_, concrete_);
    }
    return concrete_;
  }

  /// Negation without recording a branch.
  Bool operator!() const {
    if (expr_ == kNilExpr) return Bool(!concrete_);
    Tracer* t = Tracer::current();
    assert(t != nullptr && "symbolic Bool outside a tracer session");
    return Bool(!concrete_, t->arena().not_of(expr_));
  }

  [[nodiscard]] bool concrete() const noexcept { return concrete_; }
  [[nodiscard]] ExprRef expr() const noexcept { return expr_; }
  [[nodiscard]] bool symbolic() const noexcept { return expr_ != kNilExpr; }

 private:
  bool concrete_;
  ExprRef expr_{kNilExpr};
};

/// Concolic fixed-width unsigned integer.
class Value {
 public:
  /// Default: concrete zero of width 64.
  Value() : Value(0, 64) {}

  Value(std::uint64_t concrete, unsigned width)
      : concrete_(concrete & width_mask(width)),
        width_(static_cast<std::uint8_t>(width)) {
    assert(width >= 1 && width <= 64);
  }

  Value(std::uint64_t concrete, unsigned width, ExprRef expr)
      : Value(concrete, width) {
    expr_ = expr;
  }

  /// A symbolic input variable bound to a concrete value for this run.
  /// Requires an active tracer (needs its arena).
  static Value input(VarId id, unsigned width, std::uint64_t concrete);

  [[nodiscard]] std::uint64_t concrete() const noexcept { return concrete_; }
  [[nodiscard]] unsigned width() const noexcept { return width_; }
  [[nodiscard]] ExprRef expr() const noexcept { return expr_; }
  [[nodiscard]] bool symbolic() const noexcept { return expr_ != kNilExpr; }

  // --- arithmetic / bitwise (width-preserving) ---
  friend Value operator&(const Value& a, const Value& b);
  friend Value operator|(const Value& a, const Value& b);
  friend Value operator^(const Value& a, const Value& b);
  friend Value operator+(const Value& a, const Value& b);
  friend Value operator-(const Value& a, const Value& b);
  Value operator~() const;
  [[nodiscard]] Value shl(unsigned k) const;
  [[nodiscard]] Value lshr(unsigned k) const;
  [[nodiscard]] Value extract(unsigned low, unsigned width) const;
  [[nodiscard]] Value zext(unsigned width) const;

  // Mixed with plain integers: the integer adopts this value's width.
  friend Value operator&(const Value& a, std::uint64_t b) {
    return a & Value(b, a.width());
  }
  friend Value operator|(const Value& a, std::uint64_t b) {
    return a | Value(b, a.width());
  }

  // --- comparisons (produce Bool) ---
  friend Bool operator==(const Value& a, const Value& b);
  friend Bool operator!=(const Value& a, const Value& b);
  friend Bool operator<(const Value& a, const Value& b);
  friend Bool operator<=(const Value& a, const Value& b);
  friend Bool operator>(const Value& a, const Value& b) { return b < a; }
  friend Bool operator>=(const Value& a, const Value& b) { return b <= a; }

  friend Bool operator==(const Value& a, std::uint64_t b) {
    return a == Value(b, a.width());
  }
  friend Bool operator!=(const Value& a, std::uint64_t b) {
    return a != Value(b, a.width());
  }
  friend Bool operator<(const Value& a, std::uint64_t b) {
    return a < Value(b, a.width());
  }
  friend Bool operator<=(const Value& a, std::uint64_t b) {
    return a <= Value(b, a.width());
  }
  friend Bool operator>(const Value& a, std::uint64_t b) {
    return a > Value(b, a.width());
  }
  friend Bool operator>=(const Value& a, std::uint64_t b) {
    return a >= Value(b, a.width());
  }

 private:
  std::uint64_t concrete_;
  std::uint8_t width_;
  ExprRef expr_{kNilExpr};
};

}  // namespace nicemc::sym

#endif  // NICE_SYM_VALUE_H
