// Symbolic packets (paper Section 3.2): a group of symbolic integer
// variables, one per header field, rather than a generic byte array. Field
// widths follow the OpenFlow 1.0 match fields the paper's applications use.
#ifndef NICE_SYM_SYMPACKET_H
#define NICE_SYM_SYMPACKET_H

#include <cstdint>
#include <vector>

#include "sym/concolic.h"
#include "sym/value.h"

namespace nicemc::sym {

/// Widths (bits) of the symbolic packet header fields.
inline constexpr unsigned kEthAddrBits = 48;
inline constexpr unsigned kEthTypeBits = 16;
inline constexpr unsigned kIpAddrBits = 32;
inline constexpr unsigned kIpProtoBits = 8;
inline constexpr unsigned kTpPortBits = 16;
inline constexpr unsigned kTcpFlagsBits = 8;

/// Concrete header field values — what a discovery session ultimately
/// produces (one per equivalence class of handler paths).
struct PacketFields {
  std::uint64_t eth_src{0};
  std::uint64_t eth_dst{0};
  std::uint64_t eth_type{0};
  std::uint64_t ip_src{0};
  std::uint64_t ip_dst{0};
  std::uint64_t ip_proto{0};
  std::uint64_t tp_src{0};
  std::uint64_t tp_dst{0};
  std::uint64_t tcp_flags{0};

  friend bool operator==(const PacketFields&, const PacketFields&) = default;
  friend auto operator<=>(const PacketFields&, const PacketFields&) = default;
};

/// Concolic view of a packet inside an event handler: each field is a
/// sym::Value. In the model checker (no tracer) the fields are concrete;
/// during discovery they are symbolic inputs.
struct SymPacket {
  Value eth_src{0, kEthAddrBits};
  Value eth_dst{0, kEthAddrBits};
  Value eth_type{0, kEthTypeBits};
  Value ip_src{0, kIpAddrBits};
  Value ip_dst{0, kIpAddrBits};
  Value ip_proto{0, kIpProtoBits};
  Value tp_src{0, kTpPortBits};
  Value tp_dst{0, kTpPortBits};
  Value tcp_flags{0, kTcpFlagsBits};

  /// A fully concrete SymPacket.
  static SymPacket concrete(const PacketFields& f);

  /// Multicast/broadcast bit of an Ethernet address: least-significant bit
  /// of the first octet, i.e. bit 40 of the 48-bit value (Figure 3,
  /// "pkt.src[0] & 1").
  [[nodiscard]] Bool src_is_multicast() const {
    return eth_src.lshr(40).extract(0, 1) == Value(1, 1);
  }
  [[nodiscard]] Bool dst_is_multicast() const {
    return eth_dst.lshr(40).extract(0, 1) == Value(1, 1);
  }
};

/// The variable handles of a symbolic packet registered with a Concolic
/// engine, plus helpers to bind/materialize them.
struct SymPacketVars {
  VarHandle eth_src, eth_dst, eth_type, ip_src, ip_dst, ip_proto, tp_src,
      tp_dst, tcp_flags;

  /// Register all fields with the engine; `initial` seeds the first run.
  static SymPacketVars register_with(Concolic& engine,
                                     const PacketFields& initial);

  /// Concolic packet for the current run.
  [[nodiscard]] SymPacket bind(const Inputs& in) const;

  /// Concrete fields from a discovered assignment.
  [[nodiscard]] PacketFields materialize(const Assignment& asg) const;
};

/// Domain-knowledge candidate sets for the packet fields (addresses that
/// exist in the topology plus broadcast and a fresh value). Empty vectors
/// leave the corresponding field unconstrained.
struct PacketDomain {
  std::vector<std::uint64_t> eth_addrs;
  std::vector<std::uint64_t> eth_types;
  std::vector<std::uint64_t> ip_addrs;
  std::vector<std::uint64_t> ip_protos;
  std::vector<std::uint64_t> tp_ports;
  std::vector<std::uint64_t> tcp_flag_values;

  void apply(Concolic& engine, const SymPacketVars& vars) const;
};

}  // namespace nicemc::sym

#endif  // NICE_SYM_SYMPACKET_H
