// A small DPLL SAT solver with two-watched-literal propagation.
//
// This is the decision procedure underneath the bit-vector solver (our
// substitute for STP, see DESIGN.md section 1). Queries produced by NICE's
// concolic engine are tiny — a path condition over a handful of packet
// header fields plus disjunctive domain constraints — typically a few
// hundred variables and a few thousand clauses, so chronological DPLL with
// watched literals and a static occurrence-count decision heuristic is more
// than sufficient, and is simple enough to be verified by the test suite.
#ifndef NICE_SYM_SAT_H
#define NICE_SYM_SAT_H

#include <cstdint>
#include <vector>

namespace nicemc::sym {

/// SAT variable index, 0-based.
using SatVar = std::uint32_t;

/// Literal encoding: lit = 2*var + (negated ? 1 : 0).
using Lit = std::uint32_t;

constexpr Lit make_lit(SatVar v, bool negated) noexcept {
  return (v << 1) | (negated ? 1u : 0u);
}
constexpr SatVar lit_var(Lit l) noexcept { return l >> 1; }
constexpr bool lit_sign(Lit l) noexcept { return (l & 1) != 0; }
constexpr Lit lit_neg(Lit l) noexcept { return l ^ 1u; }

enum class SatResult : std::uint8_t { kSat, kUnsat };

class SatSolver {
 public:
  SatVar new_var();

  /// Number of variables created so far.
  [[nodiscard]] std::size_t num_vars() const noexcept { return value_.size(); }
  [[nodiscard]] std::size_t num_clauses() const noexcept {
    return clauses_.size();
  }

  /// Add a clause (disjunction of literals). Tautologies are dropped and
  /// duplicate literals removed. An empty clause makes the instance
  /// trivially unsatisfiable.
  void add_clause(std::vector<Lit> lits);

  // Convenience for the bit-blaster's Tseitin gates.
  void add_unit(Lit a) { add_clause({a}); }
  void add_binary(Lit a, Lit b) { add_clause({a, b}); }
  void add_ternary(Lit a, Lit b, Lit c) { add_clause({a, b, c}); }

  /// Solve the current clause set from scratch.
  SatResult solve();

  /// Value of a variable in the model found by the last solve() that
  /// returned kSat. Unconstrained variables default to false.
  [[nodiscard]] bool model_value(SatVar v) const;

  /// Statistics (for the micro-benchmarks).
  [[nodiscard]] std::uint64_t num_decisions() const noexcept {
    return decisions_;
  }
  [[nodiscard]] std::uint64_t num_propagations() const noexcept {
    return propagations_;
  }

 private:
  // lbool values: -1 unassigned, 0 false, 1 true.
  using LBool = std::int8_t;
  static constexpr LBool kUndef = -1;

  [[nodiscard]] LBool value_of(Lit l) const {
    const LBool v = value_[lit_var(l)];
    if (v == kUndef) return kUndef;
    return lit_sign(l) ? static_cast<LBool>(1 - v) : v;
  }

  bool enqueue(Lit l);                  // false on immediate conflict
  bool propagate();                     // false on conflict
  [[nodiscard]] SatVar pick_branch_var() const;  // num_vars() if all assigned
  void unwind_to(std::size_t trail_mark);

  struct Frame {
    Lit decision;
    bool flipped;
    std::size_t trail_mark;
  };

  std::vector<std::vector<Lit>> clauses_;
  // watches_[lit] = indices of clauses currently watching `lit`.
  std::vector<std::vector<std::uint32_t>> watches_;
  std::vector<LBool> value_;
  std::vector<Lit> trail_;
  std::size_t propagate_head_{0};
  std::vector<Frame> frames_;
  std::vector<std::uint32_t> occurrence_;  // static heuristic scores
  bool trivially_unsat_{false};
  std::uint64_t decisions_{0};
  std::uint64_t propagations_{0};
};

}  // namespace nicemc::sym

#endif  // NICE_SYM_SAT_H
