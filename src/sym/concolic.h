// DART-style concolic path exploration of event handlers.
//
// Given a set of symbolic input variables (packet header fields or traffic
// statistics), a set of domain constraints (Section 3.2 "symbolic packets":
// header fields range over addresses that exist in the topology, plus
// broadcast and a fresh value), and a deterministic function that runs the
// handler on those inputs, the explorer repeatedly:
//   1. runs the handler concretely with the current assignment while an
//      ambient Tracer records the path condition,
//   2. records the assignment as the representative of the new path
//      (one equivalence class of packets per feasible handler path), and
//   3. for each branch along the path, asks the solver for an assignment
//      that follows the same prefix but takes the other direction
//      (generational search: children only flip at depths beyond the branch
//      that created them, so no prefix is explored twice).
//
// The result is exactly the paper's set of "relevant packets": one concrete
// input per equivalence class of handler behaviours.
#ifndef NICE_SYM_CONCOLIC_H
#define NICE_SYM_CONCOLIC_H

#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "sym/expr.h"
#include "sym/solver.h"
#include "sym/value.h"

namespace nicemc::sym {

/// Opaque handle to an input variable registered with the explorer.
struct VarHandle {
  VarId id{0};
};

/// A concrete assignment of all registered input variables, indexed by
/// VarId in registration order.
using Assignment = std::vector<std::uint64_t>;

struct ConcolicConfig {
  /// Cap on executed paths per discovery session; prevents path explosion
  /// (Section 9 "infinite execution trees").
  int max_paths = 128;
  /// Branches beyond this depth are executed but not flipped.
  int max_flip_depth = 128;
};

struct ConcolicStats {
  std::uint64_t runs{0};
  std::uint64_t paths{0};
  std::uint64_t solver_queries{0};
  std::uint64_t solver_sat{0};
};

/// Per-run view: concolic values of the registered inputs under the current
/// assignment. Only valid inside the run callback.
class Inputs {
 public:
  Inputs(std::span<const std::uint8_t> widths, const Assignment& asg)
      : widths_(widths), asg_(asg) {}

  /// Concolic value for a registered input variable.
  [[nodiscard]] Value operator[](VarHandle h) const {
    return Value::input(h.id, widths_[h.id], asg_[h.id]);
  }

  [[nodiscard]] std::uint64_t concrete(VarHandle h) const {
    return asg_[h.id];
  }

 private:
  std::span<const std::uint8_t> widths_;
  const Assignment& asg_;
};

class Concolic {
 public:
  explicit Concolic(ConcolicConfig config = {});

  /// Register a symbolic input variable with its width and the concrete
  /// value used for the first run.
  VarHandle add_var(std::string name, unsigned width, std::uint64_t initial);

  /// Constrain a variable to a candidate set (domain knowledge). A variable
  /// may have at most one candidate-set constraint; extra calls replace it.
  void restrict_to(VarHandle h, std::vector<std::uint64_t> candidates);

  /// The handler wrapper. It must be deterministic in the inputs and must
  /// not leak state across invocations (the caller re-clones controller
  /// state per run).
  using RunFn = std::function<void(const Inputs&)>;

  /// Explore all feasible paths (bounded by config) and return one
  /// representative assignment per discovered path.
  std::vector<Assignment> explore(const RunFn& fn);

  [[nodiscard]] const ConcolicStats& stats() const noexcept { return stats_; }
  [[nodiscard]] ExprArena& arena() noexcept { return arena_; }
  [[nodiscard]] const std::vector<std::string>& var_names() const noexcept {
    return names_;
  }

 private:
  struct Pending {
    Assignment asg;
    int flip_from{0};  // generational bound
  };

  [[nodiscard]] std::vector<ExprRef> domain_constraints();

  ConcolicConfig config_;
  ExprArena arena_;
  std::vector<std::string> names_;
  std::vector<std::uint8_t> widths_;
  Assignment initial_;
  std::vector<std::vector<std::uint64_t>> domains_;  // empty = unconstrained
  ConcolicStats stats_;
};

}  // namespace nicemc::sym

#endif  // NICE_SYM_CONCOLIC_H
