// Bit-vector constraint solver facade: conjunction of width-1 expressions
// in, satisfying assignment of the symbolic input variables out.
#ifndef NICE_SYM_SOLVER_H
#define NICE_SYM_SOLVER_H

#include <cstdint>
#include <map>
#include <optional>
#include <span>

#include "sym/expr.h"

namespace nicemc::sym {

/// Model: values for the input variables that appeared in the query.
/// Variables not mentioned by any constraint are absent.
using Model = std::map<VarId, std::uint64_t>;

struct SolverStats {
  std::uint64_t queries{0};
  std::uint64_t sat{0};
  std::uint64_t unsat{0};
  std::uint64_t clauses_total{0};
  std::uint64_t sat_vars_total{0};
};

class Solver {
 public:
  explicit Solver(const ExprArena& arena) : arena_(arena) {}

  /// Solve the conjunction of the given width-1 expressions. Returns a
  /// model if satisfiable, std::nullopt otherwise.
  std::optional<Model> solve(std::span<const ExprRef> conjuncts);

  [[nodiscard]] const SolverStats& stats() const noexcept { return stats_; }

 private:
  const ExprArena& arena_;
  SolverStats stats_;
};

}  // namespace nicemc::sym

#endif  // NICE_SYM_SOLVER_H
