#include "sym/sat.h"

#include <algorithm>
#include <cassert>

namespace nicemc::sym {

SatVar SatSolver::new_var() {
  const SatVar v = static_cast<SatVar>(value_.size());
  value_.push_back(kUndef);
  watches_.push_back({});
  watches_.push_back({});
  occurrence_.push_back(0);
  return v;
}

void SatSolver::add_clause(std::vector<Lit> lits) {
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  // Tautology check: adjacent after sorting, since lit and ¬lit differ in
  // the low bit only.
  for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
    if (lit_var(lits[i]) == lit_var(lits[i + 1])) return;  // p ∨ ¬p
  }
  if (lits.empty()) {
    trivially_unsat_ = true;
    return;
  }
  for (Lit l : lits) {
    assert(lit_var(l) < value_.size() && "literal for unknown variable");
    ++occurrence_[lit_var(l)];
  }
  const auto idx = static_cast<std::uint32_t>(clauses_.size());
  clauses_.push_back(std::move(lits));
  const auto& c = clauses_.back();
  // Watch the first two literals (a unit clause watches its only literal
  // twice; propagation handles that case naturally).
  watches_[c[0]].push_back(idx);
  watches_[c.size() > 1 ? c[1] : c[0]].push_back(idx);
}

bool SatSolver::enqueue(Lit l) {
  const LBool v = value_of(l);
  if (v == 0) return false;  // already false: conflict
  if (v == 1) return true;   // already true: no-op
  value_[lit_var(l)] = lit_sign(l) ? 0 : 1;
  trail_.push_back(l);
  ++propagations_;
  return true;
}

bool SatSolver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    const Lit false_lit = lit_neg(p);  // literals that just became false
    auto& watch_list = watches_[false_lit];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watch_list.size(); ++i) {
      const std::uint32_t ci = watch_list[i];
      auto& c = clauses_[ci];
      // Normalize: put the false literal in position 1.
      if (c[0] == false_lit && c.size() > 1) std::swap(c[0], c[1]);
      const Lit other = c[0];
      if (c.size() > 1 && value_of(other) == 1) {
        watch_list[keep++] = ci;  // clause already satisfied
        continue;
      }
      // Find a new literal to watch.
      bool moved = false;
      for (std::size_t k = 2; k < c.size(); ++k) {
        if (value_of(c[k]) != 0) {
          std::swap(c[1], c[k]);
          watches_[c[1]].push_back(ci);
          moved = true;
          break;
        }
      }
      if (moved) continue;  // watch moved: drop from this list
      watch_list[keep++] = ci;
      // Clause is unit (or conflicting).
      if (!enqueue(other)) {
        // Conflict: keep remaining watches intact before reporting.
        for (std::size_t k = i + 1; k < watch_list.size(); ++k) {
          watch_list[keep++] = watch_list[k];
        }
        watch_list.resize(keep);
        return false;
      }
    }
    watch_list.resize(keep);
  }
  return true;
}

SatVar SatSolver::pick_branch_var() const {
  SatVar best = static_cast<SatVar>(num_vars());
  std::uint32_t best_score = 0;
  for (SatVar v = 0; v < num_vars(); ++v) {
    if (value_[v] == kUndef && (best == num_vars() ||
                                occurrence_[v] > best_score)) {
      best = v;
      best_score = occurrence_[v];
    }
  }
  return best;
}

void SatSolver::unwind_to(std::size_t trail_mark) {
  while (trail_.size() > trail_mark) {
    value_[lit_var(trail_.back())] = kUndef;
    trail_.pop_back();
  }
  propagate_head_ = trail_.size();
}

SatResult SatSolver::solve() {
  if (trivially_unsat_) return SatResult::kUnsat;
  // Reset any previous search.
  unwind_to(0);
  frames_.clear();

  // Assert unit clauses up-front.
  for (const auto& c : clauses_) {
    if (c.size() == 1 && !enqueue(c[0])) return SatResult::kUnsat;
  }

  for (;;) {
    if (!propagate()) {
      // Conflict: backtrack chronologically to the most recent unflipped
      // decision and assert its negation.
      while (!frames_.empty() && frames_.back().flipped) frames_.pop_back();
      if (frames_.empty()) return SatResult::kUnsat;
      Frame& f = frames_.back();
      unwind_to(f.trail_mark);
      f.flipped = true;
      if (!enqueue(lit_neg(f.decision))) return SatResult::kUnsat;
      continue;
    }
    const SatVar v = pick_branch_var();
    if (v == num_vars()) return SatResult::kSat;  // full assignment
    ++decisions_;
    const Lit decision = make_lit(v, /*negated=*/false);
    frames_.push_back(Frame{.decision = decision,
                            .flipped = false,
                            .trail_mark = trail_.size()});
    enqueue(decision);
  }
}

bool SatSolver::model_value(SatVar v) const {
  assert(v < num_vars());
  return value_[v] == 1;
}

}  // namespace nicemc::sym
