// Tseitin bit-blasting of bit-vector expressions to CNF.
//
// Every ExprRef is lowered to a vector of SAT literals (LSB first). Gates
// are encoded with the standard Tseitin clauses; adders are ripple-carry;
// unsigned comparisons are borrow chains. Constant literals are expressed
// through a dedicated always-true variable so that downstream gates can
// shortcut on them.
#ifndef NICE_SYM_BITBLAST_H
#define NICE_SYM_BITBLAST_H

#include <map>
#include <unordered_map>
#include <vector>

#include "sym/expr.h"
#include "sym/sat.h"

namespace nicemc::sym {

class BitBlaster {
 public:
  BitBlaster(const ExprArena& arena, SatSolver& sat);

  /// SAT literals for each bit of `e`, LSB first.
  const std::vector<Lit>& bits(ExprRef e);

  /// Single literal for a width-1 expression.
  Lit bit1(ExprRef e);

  /// Literal that is constrained to true in every model.
  [[nodiscard]] Lit true_lit() const noexcept { return true_lit_; }
  [[nodiscard]] Lit false_lit() const noexcept { return lit_neg(true_lit_); }

  /// For model extraction: the SAT variables backing each symbolic input
  /// variable that was blasted (VarId → literals LSB first).
  [[nodiscard]] const std::map<VarId, std::vector<Lit>>& input_bits()
      const noexcept {
    return inputs_;
  }

 private:
  [[nodiscard]] bool is_const(Lit l) const {
    return lit_var(l) == lit_var(true_lit_);
  }
  [[nodiscard]] bool const_value(Lit l) const { return l == true_lit_; }

  Lit fresh();
  Lit land(Lit a, Lit b);
  Lit lor(Lit a, Lit b);
  Lit lxor(Lit a, Lit b);
  Lit lmux(Lit sel, Lit then_l, Lit else_l);  // sel ? then : else

  std::vector<Lit> blast(ExprRef e);

  const ExprArena& arena_;
  SatSolver& sat_;
  Lit true_lit_;
  std::unordered_map<ExprRef, std::vector<Lit>> memo_;
  std::map<VarId, std::vector<Lit>> inputs_;
};

}  // namespace nicemc::sym

#endif  // NICE_SYM_BITBLAST_H
