// Controller runtime state and message dispatch.
//
// The controller is "logically centralized": one App instance (stateless
// behaviour) plus a ControllerState (the app's mutable state, the xid
// counter, outstanding stats requests, and — in the FINE-INTERLEAVING
// baseline — the queue of emitted-but-unapplied commands).
#ifndef NICE_CTRL_CONTROLLER_H
#define NICE_CTRL_CONTROLLER_H

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <vector>

#include "ctrl/app.h"
#include "ctrl/commands.h"
#include "of/messages.h"
#include "util/hash.h"
#include "util/ser.h"

namespace nicemc::ctrl {

struct ControllerState {
  std::unique_ptr<AppState> app;
  std::uint32_t next_xid{1};
  /// Switches with an outstanding stats request (bounds the query loop).
  std::set<of::SwitchId> pending_stats;
  std::uint32_t stats_rounds{0};
  /// FINE-INTERLEAVING baseline only: commands emitted by handlers that
  /// have not yet been turned into switch messages.
  std::deque<std::pair<of::SwitchId, of::ToSwitch>> pending_commands;
  /// Global send-order counter for controller→switch messages. Strategy
  /// bookkeeping (UNUSUAL); deterministic in the history and deliberately
  /// excluded from serialization.
  std::uint64_t next_of_seq{1};

  ControllerState() = default;
  ControllerState(const ControllerState& o);
  ControllerState& operator=(const ControllerState& o);
  ControllerState(ControllerState&&) noexcept = default;
  ControllerState& operator=(ControllerState&&) noexcept = default;

  void serialize(util::Ser& s) const;

  /// Rough upper estimate of serialize()'s output size — lets the state
  /// pipeline pre-size per-component buffers (see util::Snap::form).
  [[nodiscard]] std::size_t serialized_size_hint() const;

  /// Hash of the application state alone — the key of the paper's
  /// `client.packets[state(ctrl)]` discovery cache.
  [[nodiscard]] util::Hash128 app_hash() const;
};

/// Result of dispatching one switch→controller message to the app.
struct DispatchResult {
  std::vector<Command> commands;
  bool was_packet_in{false};
  of::PacketIn packet_in;  // valid when was_packet_in
};

/// Run the appropriate handler for `msg` (from switch `from`) against
/// `state`, returning the commands the handler emitted.
DispatchResult dispatch_message(const App& app, ControllerState& state,
                                of::SwitchId from,
                                const of::ToController& msg);

/// Run the stats handler with explicit (representative) per-port tx_bytes
/// values — the concrete instantiation of a discover_stats class.
std::vector<Command> dispatch_stats_with_values(
    const App& app, ControllerState& state, of::SwitchId from,
    const std::vector<std::pair<of::PortId, std::uint64_t>>& tx_bytes);

}  // namespace nicemc::ctrl

#endif  // NICE_CTRL_CONTROLLER_H
