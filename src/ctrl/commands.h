// Commands emitted by controller event handlers through the platform API
// (install_rule, send_packet_out, flood_packet, request_stats, barrier —
// the NOX-style calls in Figure 3). Handlers run atomically and enqueue
// commands; the model checker turns them into OpenFlow messages on the
// per-switch control channels (or, in the FINE-INTERLEAVING baseline, into
// individually interleavable transitions).
#ifndef NICE_CTRL_COMMANDS_H
#define NICE_CTRL_COMMANDS_H

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "of/messages.h"
#include "of/packet.h"
#include "of/rule.h"

namespace nicemc::ctrl {

struct CmdInstallRule {
  of::SwitchId sw{0};
  of::Rule rule;
};

struct CmdDeleteRule {
  of::SwitchId sw{0};
  of::Match match;
  std::optional<std::uint16_t> priority;  // set = strict delete
};

struct CmdPacketOut {
  of::SwitchId sw{0};
  of::PacketOut msg;
};

struct CmdRequestStats {
  of::SwitchId sw{0};
  std::uint32_t xid{0};
};

struct CmdBarrier {
  of::SwitchId sw{0};
  std::uint32_t xid{0};
};

using Command = std::variant<CmdInstallRule, CmdDeleteRule, CmdPacketOut,
                             CmdRequestStats, CmdBarrier>;

/// Switch the command is addressed to.
of::SwitchId command_target(const Command& c);

/// Lower a command to the OpenFlow message the switch will process.
of::ToSwitch command_to_message(const Command& c);

/// Command collector handed to event handlers.
class Ctx {
 public:
  explicit Ctx(std::uint32_t* next_xid) : next_xid_(next_xid) {}

  /// Figure 3 line 13: install a rule on a switch.
  void install_rule(of::SwitchId sw, of::Rule rule) {
    commands_.push_back(CmdInstallRule{sw, std::move(rule)});
  }

  void delete_rule(of::SwitchId sw, of::Match match,
                   std::optional<std::uint16_t> priority = std::nullopt) {
    commands_.push_back(CmdDeleteRule{sw, std::move(match), priority});
  }

  /// Figure 3 line 14: tell the switch what to do with a buffered packet.
  void send_packet_out(of::SwitchId sw, std::uint32_t buffer_id,
                       of::ActionList actions) {
    of::PacketOut po;
    po.buffer_id = buffer_id;
    po.actions = std::move(actions);
    commands_.push_back(CmdPacketOut{sw, std::move(po)});
  }

  /// Inject a controller-constructed packet (e.g. a proxied ARP reply).
  void send_packet_out_full(of::SwitchId sw, of::Packet packet,
                            of::PortId in_port, of::ActionList actions) {
    of::PacketOut po;
    po.buffer_id = of::kNoBuffer;
    po.packet = std::move(packet);
    po.in_port = in_port;
    po.actions = std::move(actions);
    commands_.push_back(CmdPacketOut{sw, std::move(po)});
  }

  /// Figure 3 line 16: flood a buffered packet out of every port but the
  /// ingress.
  void flood_packet(of::SwitchId sw, std::uint32_t buffer_id) {
    send_packet_out(sw, buffer_id, {of::Action::flood()});
  }

  std::uint32_t request_stats(of::SwitchId sw) {
    const std::uint32_t xid = (*next_xid_)++;
    commands_.push_back(CmdRequestStats{sw, xid});
    return xid;
  }

  std::uint32_t send_barrier(of::SwitchId sw) {
    const std::uint32_t xid = (*next_xid_)++;
    commands_.push_back(CmdBarrier{sw, xid});
    return xid;
  }

  [[nodiscard]] const std::vector<Command>& commands() const noexcept {
    return commands_;
  }
  [[nodiscard]] std::vector<Command> take_commands() noexcept {
    return std::move(commands_);
  }

 private:
  std::uint32_t* next_xid_;
  std::vector<Command> commands_;
};

}  // namespace nicemc::ctrl

#endif  // NICE_CTRL_COMMANDS_H
