#include "ctrl/app.h"

// App and AppState are interface classes; this TU anchors their vtables.
namespace nicemc::ctrl {}
