#include "ctrl/controller.h"

namespace nicemc::ctrl {

ControllerState::ControllerState(const ControllerState& o)
    : app(o.app ? o.app->clone() : nullptr),
      next_xid(o.next_xid),
      pending_stats(o.pending_stats),
      stats_rounds(o.stats_rounds),
      pending_commands(o.pending_commands),
      next_of_seq(o.next_of_seq) {}

ControllerState& ControllerState::operator=(const ControllerState& o) {
  if (this == &o) return *this;
  app = o.app ? o.app->clone() : nullptr;
  next_xid = o.next_xid;
  pending_stats = o.pending_stats;
  stats_rounds = o.stats_rounds;
  pending_commands = o.pending_commands;
  next_of_seq = o.next_of_seq;
  return *this;
}

void ControllerState::serialize(util::Ser& s) const {
  s.put_tag('C');
  if (app) app->serialize(s);
  s.put_u32(next_xid);
  s.put_u32(static_cast<std::uint32_t>(pending_stats.size()));
  for (of::SwitchId sw : pending_stats) s.put_u32(sw);
  s.put_u32(stats_rounds);
  s.put_u32(static_cast<std::uint32_t>(pending_commands.size()));
  for (const auto& [sw, msg] : pending_commands) {
    s.put_u32(sw);
    // Port fields inside a queued command belong to its target switch.
    const util::Renamer::SwScope sw_scope(sw);
    of::serialize_message(s, msg);
  }
}

std::size_t ControllerState::serialized_size_hint() const {
  // The app state's size is unknown (polymorphic); 256 covers the apps in
  // this repo. The rest is counted from the containers.
  return 256 + 16 + pending_stats.size() * 4 + pending_commands.size() * 160;
}

util::Hash128 ControllerState::app_hash() const {
  util::Ser s;
  if (app) app->serialize(s);
  return s.hash();
}

DispatchResult dispatch_message(const App& app, ControllerState& state,
                                of::SwitchId from,
                                const of::ToController& msg) {
  DispatchResult result;
  Ctx ctx(&state.next_xid);
  if (const auto* pin = std::get_if<of::PacketIn>(&msg)) {
    result.was_packet_in = true;
    result.packet_in = *pin;
    app.packet_in(*state.app, ctx, from, pin->in_port,
                  sym::SymPacket::concrete(pin->packet.hdr), pin->buffer_id,
                  pin->reason);
  } else if (const auto* sr = std::get_if<of::StatsReply>(&msg)) {
    state.pending_stats.erase(from);
    app.stats_in(*state.app, ctx, from, SymStats::concrete(*sr));
  } else if (const auto* ps = std::get_if<of::PortStatus>(&msg)) {
    app.handle_port_status(*state.app, ctx, from, ps->port, ps->up);
  } else {
    const auto& br = std::get<of::BarrierReply>(msg);
    app.barrier_in(*state.app, ctx, from, br.xid);
  }
  result.commands = ctx.take_commands();
  return result;
}

std::vector<Command> dispatch_stats_with_values(
    const App& app, ControllerState& state, of::SwitchId from,
    const std::vector<std::pair<of::PortId, std::uint64_t>>& tx_bytes) {
  state.pending_stats.erase(from);
  Ctx ctx(&state.next_xid);
  SymStats stats;
  for (const auto& [port, bytes] : tx_bytes) {
    stats.tx_bytes.emplace(port, sym::Value(bytes, 32));
  }
  app.stats_in(*state.app, ctx, from, stats);
  return ctx.take_commands();
}

}  // namespace nicemc::ctrl
