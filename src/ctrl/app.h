// The NOX-like application interface.
//
// A controller application is a *stateless* object (all handler methods are
// const) whose mutable state lives in an AppState subclass. This split is
// what makes NICE's architecture work:
//   * the model checker clones/serializes AppState as part of the system
//     state (concrete controller state, paper Section 3.2);
//   * discover_packets clones AppState and symbolically executes packet_in
//     against the clone, discarding emitted commands;
//   * handlers receive packets and statistics as concolic values
//     (sym::SymPacket / SymStats), so the same handler code serves both
//     concrete model-checking execution and symbolic discovery.
#ifndef NICE_CTRL_APP_H
#define NICE_CTRL_APP_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ctrl/commands.h"
#include "of/messages.h"
#include "of/packet.h"
#include "sym/sympacket.h"
#include "sym/value.h"
#include "util/ser.h"

namespace nicemc::ctrl {

/// Mutable application state. Must be deep-cloneable and canonically
/// serializable (both are required for state matching and discovery).
class AppState {
 public:
  virtual ~AppState() = default;
  [[nodiscard]] virtual std::unique_ptr<AppState> clone() const = 0;
  virtual void serialize(util::Ser& s) const = 0;
};

/// Concolic view of a port-stats reply (discover_stats runs the handler
/// with symbolic integers as arguments, Section 3.3).
struct SymStats {
  std::map<of::PortId, sym::Value> tx_bytes;

  static SymStats concrete(const of::StatsReply& r) {
    SymStats s;
    for (const auto& [port, st] : r.ports) {
      s.tx_bytes.emplace(port, sym::Value(st.tx_bytes, 32));
    }
    return s;
  }
};

/// A dictionary from concrete keys to concrete values supporting concolic
/// lookups: probing with a symbolic key scans the entries and records one
/// equality branch per entry — the C++ analogue of the paper's
/// constraint-exposing dictionary stub (Section 6, transformation (iv)).
class SymTable {
 public:
  using Map = std::map<std::uint64_t, std::uint64_t>;

  /// Concolic membership test. Records branches as a side effect.
  [[nodiscard]] bool contains(const sym::Value& key) const {
    for (const auto& [k, v] : map_) {
      if (key == sym::Value(k, key.width())) return true;
    }
    return false;
  }

  /// Concolic lookup; call only after contains() returned true (the scan
  /// re-records the equality branch that identifies the entry).
  [[nodiscard]] std::uint64_t at(const sym::Value& key) const {
    for (const auto& [k, v] : map_) {
      if (key == sym::Value(k, key.width())) return v;
    }
    return 0;
  }

  /// Concrete write (controller state stays concrete; the concolic engine
  /// always runs handlers on cloned state, so writing the concrete value of
  /// a symbolic key is sound — Section 3.2).
  void put(std::uint64_t key, std::uint64_t value) { map_[key] = value; }
  void erase(std::uint64_t key) { map_.erase(key); }
  [[nodiscard]] const Map& raw() const noexcept { return map_; }
  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }

  void serialize(util::Ser& s) const { s.put_map_u64(map_); }

  friend bool operator==(const SymTable&, const SymTable&) = default;

 private:
  Map map_;
};

/// Controller application behaviour. Implementations must keep all mutable
/// state in their AppState; handler methods are const to enforce this.
class App {
 public:
  virtual ~App() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::unique_ptr<AppState> make_initial_state()
      const = 0;

  /// Packet arrival (Figure 3 packet_in). `pkt` is concolic.
  virtual void packet_in(AppState& state, Ctx& ctx, of::SwitchId sw,
                         of::PortId in_port, const sym::SymPacket& pkt,
                         std::uint32_t buffer_id,
                         of::PacketIn::Reason reason) const = 0;

  virtual void switch_join(AppState& state, Ctx& ctx,
                           of::SwitchId sw) const {
    (void)state;
    (void)ctx;
    (void)sw;
  }
  virtual void switch_leave(AppState& state, Ctx& ctx,
                            of::SwitchId sw) const {
    (void)state;
    (void)ctx;
    (void)sw;
  }

  /// Port-statistics reply (concolic, for discover_stats).
  virtual void stats_in(AppState& state, Ctx& ctx, of::SwitchId sw,
                        const SymStats& stats) const {
    (void)state;
    (void)ctx;
    (void)sw;
    (void)stats;
  }

  virtual void barrier_in(AppState& state, Ctx& ctx, of::SwitchId sw,
                          std::uint32_t xid) const {
    (void)state;
    (void)ctx;
    (void)sw;
    (void)xid;
  }

  /// OFPT_PORT_STATUS: port `port` of switch `sw` went down (link failure)
  /// or came back up. Robust applications react — flush learned state,
  /// re-steer flows, recompute paths — so traffic survives the failure.
  virtual void handle_port_status(AppState& state, Ctx& ctx, of::SwitchId sw,
                                  of::PortId port, bool up) const {
    (void)state;
    (void)ctx;
    (void)sw;
    (void)port;
    (void)up;
  }

  /// FLOW-IR support: do two packets belong to the same flow group
  /// (the user-provided isSameFlow of Section 4)?
  [[nodiscard]] virtual bool is_same_flow(
      const sym::PacketFields& a, const sym::PacketFields& b) const {
    return of::MacPair::of_packet(a) == of::MacPair::of_packet(b) ||
           of::MacPair::of_packet(a) == of::MacPair::of_packet(b).reversed();
  }

  /// Application-level external events (e.g. the load balancer's policy
  /// change). Returns labels of events enabled in `state`; the model
  /// checker exposes each as a controller transition.
  [[nodiscard]] virtual std::vector<std::string> external_events(
      const AppState& state) const {
    (void)state;
    return {};
  }
  virtual void on_external(AppState& state, Ctx& ctx,
                           std::size_t event_index) const {
    (void)state;
    (void)ctx;
    (void)event_index;
  }

  /// True if the app wants periodic port statistics from `sw` (enables the
  /// stats-request transition; the TE application uses this).
  [[nodiscard]] virtual bool wants_stats(const AppState& state,
                                         of::SwitchId sw) const {
    (void)state;
    (void)sw;
    return false;
  }
};

}  // namespace nicemc::ctrl

#endif  // NICE_CTRL_APP_H
