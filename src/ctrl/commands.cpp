#include "ctrl/commands.h"

namespace nicemc::ctrl {

of::SwitchId command_target(const Command& c) {
  return std::visit([](const auto& v) { return v.sw; }, c);
}

of::ToSwitch command_to_message(const Command& c) {
  if (const auto* ir = std::get_if<CmdInstallRule>(&c)) {
    return of::FlowMod{.cmd = of::FlowMod::Cmd::kAdd, .rule = ir->rule};
  }
  if (const auto* dr = std::get_if<CmdDeleteRule>(&c)) {
    of::FlowMod fm;
    fm.cmd = dr->priority ? of::FlowMod::Cmd::kDeleteStrict
                          : of::FlowMod::Cmd::kDelete;
    fm.rule.match = dr->match;
    fm.rule.priority = dr->priority.value_or(0);
    return fm;
  }
  if (const auto* po = std::get_if<CmdPacketOut>(&c)) {
    return po->msg;
  }
  if (const auto* sr = std::get_if<CmdRequestStats>(&c)) {
    return of::StatsRequest{.xid = sr->xid};
  }
  const auto& b = std::get<CmdBarrier>(c);
  return of::BarrierRequest{.xid = b.xid};
}

}  // namespace nicemc::ctrl
