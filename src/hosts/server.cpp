#include "hosts/server.h"

namespace nicemc::hosts {

bool should_reply(const topo::HostSpec& self, const of::Packet& received) {
  return received.hdr.eth_dst == self.mac;
}

PendingReply echo_reply(const topo::HostSpec& self,
                        const of::Packet& received) {
  PendingReply r;
  r.hdr = received.hdr;
  r.hdr.eth_src = self.mac;
  r.hdr.eth_dst = received.hdr.eth_src;
  r.hdr.ip_src = received.hdr.ip_dst;
  r.hdr.ip_dst = received.hdr.ip_src;
  r.hdr.tp_src = received.hdr.tp_dst;
  r.hdr.tp_dst = received.hdr.tp_src;
  if (received.hdr.ip_proto == of::kIpProtoTcp) {
    r.hdr.tcp_flags = (received.hdr.tcp_flags & of::kTcpSyn)
                          ? (of::kTcpSyn | of::kTcpAck)
                          : of::kTcpAck;
  }
  r.flow_id = received.flow_id;
  return r;
}

}  // namespace nicemc::hosts
