#include "hosts/host.h"

// Host types are header-only; this TU anchors the library target.
namespace nicemc::hosts {}
