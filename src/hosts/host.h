// End-host models (paper Section 2.2.3).
//
// NICE ships simple host programs rather than real network stacks: a client
// with a bounded number of `send` transitions and a burst counter that is
// replenished by received packets (this is the PKT-SEQ strategy's state-
// space bound, Section 4), a server whose `send_reply` transition is
// enabled by `receive`, and a mobile host with a `move` transition.
//
// We factor these as one host model with orthogonal behaviour flags
// (HostBehavior, static configuration) plus a small dynamic state
// (HostState, part of the hashed system state).
#ifndef NICE_HOSTS_HOST_H
#define NICE_HOSTS_HOST_H

#include <cstdint>
#include <deque>
#include <vector>

#include "of/channel.h"
#include "of/packet.h"
#include "sym/sympacket.h"
#include "util/ser.h"

namespace nicemc::hosts {

/// One programmed send: header fields plus the logical flow tag.
struct ScriptEntry {
  sym::PacketFields hdr;
  std::uint32_t flow_id{0};

  friend bool operator==(const ScriptEntry&, const ScriptEntry&) = default;
};

/// A reply computed on receive, waiting for its send_reply transition.
struct PendingReply {
  sym::PacketFields hdr;
  std::uint32_t flow_id{0};

  friend bool operator==(const PendingReply&, const PendingReply&) = default;

  void serialize(util::Ser& s) const {
    const util::Renamer* rn = util::Renamer::active();
    s.put_u64(util::rn_mac(rn, hdr.eth_src));
    s.put_u64(util::rn_mac(rn, hdr.eth_dst));
    s.put_u64(hdr.eth_type);
    s.put_u64(util::rn_ip(rn, hdr.ip_src));
    s.put_u64(util::rn_ip(rn, hdr.ip_dst));
    s.put_u64(hdr.ip_proto);
    s.put_u64(hdr.tp_src);
    s.put_u64(hdr.tp_dst);
    s.put_u64(hdr.tcp_flags);
    s.put_u32(util::rn_flow(rn, flow_id));
  }
};

/// Static per-host behaviour. Not part of the hashed state.
struct HostBehavior {
  /// Reply to received packets addressed to this host's MAC.
  bool echo{false};
  /// May move (once per alternative location) — the mobile host model.
  bool can_move{false};
  /// May re-send script entry 0 once (models a retransmitted/duplicate SYN).
  bool can_dup{false};
  /// Sends are driven by symbolic discovery (discover_packets) instead of
  /// the script. Requires the checker to run with discovery enabled.
  bool discovery_sends{false};
  /// Programmed sends, in order (used when discovery_sends is false).
  std::vector<ScriptEntry> script;
  /// PKT-SEQ bound: maximum number of send transitions (tree depth).
  int max_sends{0};
  /// PKT-SEQ bound: initial burst tokens (outstanding-packet budget);
  /// +1 token per received packet, the paper's default replenishment.
  int initial_burst{1};
};

/// Dynamic host state; cloned and hashed with the system state.
struct HostState {
  of::HostId id{0};
  of::SwitchId sw{0};   // current attachment (mobile hosts change this)
  of::PortId port{0};
  of::Fifo<of::Packet> input;
  std::deque<PendingReply> pending_replies;
  int sends_done{0};
  int burst{1};
  int received{0};
  bool dup_used{false};
  std::uint8_t moves_used{0};  // bitmask over alt_locations

  friend bool operator==(const HostState&, const HostState&) = default;

  void serialize(util::Ser& s, bool canonical = true) const {
    std::size_t bounds[kSerializeParts + 1];
    serialize_parts(s, canonical, bounds);
  }

  /// Two-level COLLAPSE support (see util::Snap::form_id): the identity +
  /// input queue, the pending replies, and the send/receive counters vary
  /// semi-independently, so they are interned as separate sections whose
  /// concatenation is byte-identical to serialize(). Records the
  /// kSerializeParts + 1 boundary offsets (relative to s's size on entry)
  /// in `bounds`.
  static constexpr std::size_t kSerializeParts = 3;
  void serialize_parts(util::Ser& s, bool canonical,
                       std::size_t* bounds) const {
    const std::size_t base = s.size();
    const util::Renamer* rn = util::Renamer::active();
    // Port fields below this host belong to its attachment switch.
    const util::Renamer::SwScope sw_scope(sw);
    // part 0: identity + attachment + input queue
    bounds[0] = s.size() - base;
    s.put_tag('H');
    s.put_u32(util::rn_host(rn, id));
    s.put_u32(sw);
    s.put_u32(util::rn_port(rn, sw, port));
    input.serialize(s, [canonical](util::Ser& ser, const of::Packet& p) {
      p.serialize(ser, /*include_copy_id=*/!canonical);
    });
    // part 1: replies awaiting their send_reply transition
    bounds[1] = s.size() - base;
    s.put_u32(static_cast<std::uint32_t>(pending_replies.size()));
    for (const PendingReply& r : pending_replies) r.serialize(s);
    // part 2: send/receive bookkeeping
    bounds[2] = s.size() - base;
    s.put_i64(sends_done);
    s.put_i64(burst);
    s.put_i64(received);
    s.put_bool(dup_used);
    s.put_u8(moves_used);
    bounds[3] = s.size() - base;
  }

  /// Rough upper estimate of serialize()'s output size — lets the state
  /// pipeline pre-size per-component buffers (see util::Snap::form).
  [[nodiscard]] std::size_t serialized_size_hint() const {
    return 48 + input.size() * 160 + pending_replies.size() * 80;
  }

  /// Remaining scripted sends / discovery budget.
  [[nodiscard]] bool can_send(const HostBehavior& b) const {
    if (burst <= 0) return false;
    if (b.discovery_sends) return sends_done < b.max_sends;
    return sends_done < static_cast<int>(b.script.size());
  }
};

}  // namespace nicemc::hosts

#endif  // NICE_HOSTS_HOST_H
