// Echo-server behaviour: compute the reply a server host sends back for a
// received packet (the paper's default server model: `receive` enables
// `send_reply`).
#ifndef NICE_HOSTS_SERVER_H
#define NICE_HOSTS_SERVER_H

#include "hosts/host.h"
#include "topo/topology.h"

namespace nicemc::hosts {

/// Should this host respond to the packet at all? (Unicast to our MAC.)
bool should_reply(const topo::HostSpec& self, const of::Packet& received);

/// Reply with source/destination identities swapped; a TCP SYN elicits a
/// SYN|ACK, other TCP segments an ACK, everything else an echo.
PendingReply echo_reply(const topo::HostSpec& self,
                        const of::Packet& received);

}  // namespace nicemc::hosts

#endif  // NICE_HOSTS_SERVER_H
