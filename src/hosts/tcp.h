// TCP client scripts for the load-balancer scenarios (Section 8.2): a SYN
// followed by data segments of the same connection, plus a duplicate-SYN
// helper modelling a retransmission.
#ifndef NICE_HOSTS_TCP_H
#define NICE_HOSTS_TCP_H

#include <cstdint>
#include <vector>

#include "hosts/host.h"
#include "topo/topology.h"

namespace nicemc::hosts {

struct TcpConnectionSpec {
  std::uint32_t dst_ip{0};  // e.g. the load balancer's virtual IP
  std::uint64_t dst_mac{0};
  std::uint16_t src_port{1024};
  std::uint16_t dst_port{80};
  int data_segments{2};
  std::uint32_t flow_id{0};
};

/// [SYN, DATA*n] — all segments share the 5-tuple and flow id.
std::vector<ScriptEntry> tcp_connection(const topo::HostSpec& from,
                                        const TcpConnectionSpec& spec);

}  // namespace nicemc::hosts

#endif  // NICE_HOSTS_TCP_H
