#include "hosts/client.h"

namespace nicemc::hosts {

ScriptEntry l2_ping(const topo::HostSpec& from, const topo::HostSpec& to,
                    std::uint32_t flow_id) {
  ScriptEntry e;
  e.hdr.eth_src = from.mac;
  e.hdr.eth_dst = to.mac;
  e.hdr.eth_type = of::kEthTypeIpv4;
  e.hdr.ip_src = from.ip;
  e.hdr.ip_dst = to.ip;
  e.hdr.ip_proto = of::kIpProtoIcmp;
  e.flow_id = flow_id;
  return e;
}

std::vector<ScriptEntry> l2_ping_script(const topo::HostSpec& from,
                                        const topo::HostSpec& to, int count,
                                        std::uint32_t first_flow_id) {
  std::vector<ScriptEntry> script;
  script.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    script.push_back(l2_ping(from, to, first_flow_id + static_cast<std::uint32_t>(i)));
  }
  return script;
}

ScriptEntry arp_request(const topo::HostSpec& from, std::uint32_t target_ip,
                        std::uint32_t flow_id) {
  ScriptEntry e;
  e.hdr.eth_src = from.mac;
  e.hdr.eth_dst = of::kBroadcastMac;
  e.hdr.eth_type = of::kEthTypeArp;
  e.hdr.ip_src = from.ip;
  e.hdr.ip_dst = target_ip;
  e.flow_id = flow_id;
  return e;
}

}  // namespace nicemc::hosts
