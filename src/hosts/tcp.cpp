#include "hosts/tcp.h"

namespace nicemc::hosts {

std::vector<ScriptEntry> tcp_connection(const topo::HostSpec& from,
                                        const TcpConnectionSpec& spec) {
  std::vector<ScriptEntry> script;
  ScriptEntry base;
  base.hdr.eth_src = from.mac;
  base.hdr.eth_dst = spec.dst_mac;
  base.hdr.eth_type = of::kEthTypeIpv4;
  base.hdr.ip_src = from.ip;
  base.hdr.ip_dst = spec.dst_ip;
  base.hdr.ip_proto = of::kIpProtoTcp;
  base.hdr.tp_src = spec.src_port;
  base.hdr.tp_dst = spec.dst_port;
  base.flow_id = spec.flow_id;

  ScriptEntry syn = base;
  syn.hdr.tcp_flags = of::kTcpSyn;
  script.push_back(syn);
  for (int i = 0; i < spec.data_segments; ++i) {
    ScriptEntry data = base;
    data.hdr.tcp_flags = of::kTcpAck;
    script.push_back(data);
  }
  return script;
}

}  // namespace nicemc::hosts
