// Packet-script builders for client host models.
#ifndef NICE_HOSTS_CLIENT_H
#define NICE_HOSTS_CLIENT_H

#include <cstdint>
#include <vector>

#include "hosts/host.h"
#include "topo/topology.h"

namespace nicemc::hosts {

/// A "layer-2 ping" (the Section 7 workload): an Ethernet frame from one
/// host to another, to which an echo host responds in kind.
ScriptEntry l2_ping(const topo::HostSpec& from, const topo::HostSpec& to,
                    std::uint32_t flow_id);

/// `count` identical pings, each a distinct flow (the "number of concurrent
/// pings" knob of Table 1).
std::vector<ScriptEntry> l2_ping_script(const topo::HostSpec& from,
                                        const topo::HostSpec& to, int count,
                                        std::uint32_t first_flow_id);

/// Broadcast ARP request asking who-has `target_ip`.
ScriptEntry arp_request(const topo::HostSpec& from, std::uint32_t target_ip,
                        std::uint32_t flow_id);

}  // namespace nicemc::hosts

#endif  // NICE_HOSTS_CLIENT_H
