#include "props/direct_paths.h"

namespace nicemc::props {

namespace {

/// Flows eligible for direct-path tracking: unicast, between two distinct
/// hosts (a MAC-learning switch can never install a direct path for a
/// self-addressed packet — it always floods).
bool is_trackable(const sym::PacketFields& h) {
  return ((h.eth_dst >> 40) & 1) == 0 && h.eth_src != h.eth_dst;
}

/// Did this delivery reach the packet's actual L2 destination (as opposed
/// to a flooded copy arriving at a bystander host)?
bool reached_destination(const mc::EvPacketDelivered& del) {
  return del.pkt.hdr.eth_dst == del.host_mac;
}

}  // namespace

void DirectPathsState::serialize(util::Ser& s) const {
  const util::Renamer* rn = util::Renamer::active();
  s.put_tag('D');
  s.put_u32(static_cast<std::uint32_t>(delivered.size()));
  if (rn == nullptr) {
    for (const L2Flow& p : delivered) {
      s.put_u64(p.src);
      s.put_u64(p.dst);
      s.put_u64(p.eth_type);
    }
  } else {
    std::set<L2Flow> renamed;
    for (const L2Flow& p : delivered) {
      renamed.insert(L2Flow{rn->r_mac(p.src), rn->r_mac(p.dst), p.eth_type});
    }
    for (const L2Flow& p : renamed) {
      s.put_u64(p.src);
      s.put_u64(p.dst);
      s.put_u64(p.eth_type);
    }
  }
  s.put_u32(static_cast<std::uint32_t>(watched.size()));
  if (!util::rn_uid_renumbering(rn)) {
    for (std::uint32_t uid : watched) s.put_u32(uid);
  } else if (util::rn_uid_assigning(rn)) {
    // Assign pass: register the keys, emit raw order (bytes discarded).
    for (std::uint32_t uid : watched) {
      rn->note_uid(uid);
      s.put_u32(uid);
    }
  } else {
    std::set<std::uint32_t> renamed;
    for (std::uint32_t uid : watched) renamed.insert(rn->r_uid(uid));
    for (std::uint32_t uid : renamed) s.put_u32(uid);
  }
}

void DirectPaths::on_events(mc::PropState& ps,
                            std::span<const mc::Event> events,
                            const mc::SystemState& state,
                            std::vector<mc::Violation>& out) const {
  (void)state;
  auto& st = static_cast<DirectPathsState&>(ps);
  for (const mc::Event& e : events) {
    if (const auto* sent = std::get_if<mc::EvPacketSent>(&e)) {
      if (is_trackable(sent->pkt.hdr) &&
          st.delivered.contains(L2Flow::of_packet(sent->pkt.hdr))) {
        st.watched.insert(sent->pkt.uid);
      }
    } else if (const auto* del = std::get_if<mc::EvPacketDelivered>(&e)) {
      if (is_trackable(del->pkt.hdr) && reached_destination(*del)) {
        st.delivered.insert(L2Flow::of_packet(del->pkt.hdr));
      }
    } else if (const auto* pin = std::get_if<mc::EvPacketIn>(&e)) {
      if (st.watched.contains(pin->pkt.uid)) {
        out.push_back(mc::Violation{
            name(),
            "packet " + pin->pkt.brief() +
                " reached the controller although its flow already had a "
                "direct path (switch " +
                std::to_string(pin->sw) + ")"});
      }
    }
  }
}

void StrictDirectPaths::on_events(mc::PropState& ps,
                                  std::span<const mc::Event> events,
                                  const mc::SystemState& state,
                                  std::vector<mc::Violation>& out) const {
  (void)state;
  auto& st = static_cast<DirectPathsState&>(ps);
  for (const mc::Event& e : events) {
    if (const auto* sent = std::get_if<mc::EvPacketSent>(&e)) {
      if (!is_trackable(sent->pkt.hdr)) continue;
      const L2Flow p = L2Flow::of_packet(sent->pkt.hdr);
      if (st.delivered.contains(p) && st.delivered.contains(p.reversed())) {
        st.watched.insert(sent->pkt.uid);
      }
    } else if (const auto* del = std::get_if<mc::EvPacketDelivered>(&e)) {
      if (is_trackable(del->pkt.hdr) && reached_destination(*del)) {
        st.delivered.insert(L2Flow::of_packet(del->pkt.hdr));
      }
    } else if (const auto* pin = std::get_if<mc::EvPacketIn>(&e)) {
      if (st.watched.contains(pin->pkt.uid)) {
        out.push_back(mc::Violation{
            name(),
            "packet " + pin->pkt.brief() +
                " reached the controller although both directions of its "
                "host pair already delivered (switch " +
                std::to_string(pin->sw) + ")"});
      }
    }
  }
}

}  // namespace nicemc::props
