// DirectPaths and StrictDirectPaths (paper Section 5.2).
//
// DirectPaths: once a packet of a flow (a directed MAC pair) has been
// delivered, later packets of the same flow must not reach the controller.
// StrictDirectPaths: once the two hosts have delivered at least one packet
// in *each* direction, no later packet between them may reach the
// controller.
//
// Robustness to communication delays (the "safe time" discussed in the
// paper): only packets *sent after* the condition was already established
// are held against the controller — packets that were already in flight
// when the condition became true cannot trigger a violation.
#ifndef NICE_PROPS_DIRECT_PATHS_H
#define NICE_PROPS_DIRECT_PATHS_H

#include <map>
#include <set>

#include "mc/property.h"
#include "of/packet.h"

namespace nicemc::props {

/// Flow identity at the granularity MAC-learning rules can establish:
/// source MAC, destination MAC, and Ethernet type. Keying on the type
/// matters — an ARP frame between hosts that exchanged IPv4 traffic is a
/// different flow and may legitimately reach the controller.
struct L2Flow {
  std::uint64_t src{0}, dst{0}, eth_type{0};

  friend auto operator<=>(const L2Flow&, const L2Flow&) = default;

  static L2Flow of_packet(const sym::PacketFields& h) {
    return L2Flow{h.eth_src, h.eth_dst, h.eth_type};
  }
  [[nodiscard]] L2Flow reversed() const {
    return L2Flow{dst, src, eth_type};
  }
};

class DirectPathsState final : public mc::PropState {
 public:
  /// Directed L2 flows with at least one delivered packet.
  std::set<L2Flow> delivered;
  /// uids of packets sent after their flow's condition held.
  std::set<std::uint32_t> watched;

  [[nodiscard]] std::unique_ptr<mc::PropState> clone() const override {
    return std::make_unique<DirectPathsState>(*this);
  }
  void serialize(util::Ser& s) const override;
};

class DirectPaths final : public mc::Property {
 public:
  [[nodiscard]] std::string name() const override { return "DirectPaths"; }
  [[nodiscard]] std::unique_ptr<mc::PropState> make_state() const override {
    return std::make_unique<DirectPathsState>();
  }
  void on_events(mc::PropState& ps, std::span<const mc::Event> events,
                 const mc::SystemState& state,
                 std::vector<mc::Violation>& out) const override;
};

class StrictDirectPaths final : public mc::Property {
 public:
  [[nodiscard]] std::string name() const override {
    return "StrictDirectPaths";
  }
  [[nodiscard]] std::unique_ptr<mc::PropState> make_state() const override {
    return std::make_unique<DirectPathsState>();
  }
  void on_events(mc::PropState& ps, std::span<const mc::Event> events,
                 const mc::SystemState& state,
                 std::vector<mc::Violation>& out) const override;
};

}  // namespace nicemc::props

#endif  // NICE_PROPS_DIRECT_PATHS_H
