#include "props/no_stale_rules.h"

#include "mc/system.h"

namespace nicemc::props {

void NoStaleRules::at_quiescence(mc::PropState& ps,
                                 const mc::SystemState& state,
                                 std::vector<mc::Violation>& out) const {
  (void)ps;
  for (const of::Switch& sw : state.switches()) {
    if (sw.down_ports.empty()) continue;
    for (const of::Rule& rule : sw.table.rules()) {
      for (const of::Action& a : rule.actions) {
        if (a.type == of::ActionType::kOutput &&
            sw.down_ports.contains(a.port)) {
          out.push_back(mc::Violation{
              name(), "switch " + std::to_string(sw.id) + " rule " +
                          rule.brief() + " still forwards out failed port " +
                          std::to_string(a.port)});
        }
      }
    }
  }
}

}  // namespace nicemc::props
