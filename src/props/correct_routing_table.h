// UseCorrectRoutingTable (paper Section 8.3): when the controller handles
// the first packet of a flow arriving at an ingress switch, it must issue
// rule installations to all and only the switches on the path appropriate
// for the current network load.
//
// The expected path is computed by a scenario-supplied callback (it reads
// the application's own state — properties may access global system state,
// Section 5.1) so this property stays independent of any concrete app.
#ifndef NICE_PROPS_CORRECT_ROUTING_TABLE_H
#define NICE_PROPS_CORRECT_ROUTING_TABLE_H

#include <functional>
#include <set>

#include "ctrl/app.h"
#include "mc/property.h"
#include "mc/system.h"
#include "of/packet.h"

namespace nicemc::props {

class UseCorrectRoutingTable final : public mc::Property {
 public:
  /// Returns the set of switches the handler should install rules on for
  /// this packet (empty = "no opinion"; the check is skipped).
  using ExpectedPathFn = std::function<std::set<of::SwitchId>(
      const ctrl::AppState&, const sym::PacketFields&)>;

  UseCorrectRoutingTable(of::SwitchId ingress, ExpectedPathFn expected)
      : ingress_(ingress), expected_(std::move(expected)) {}

  [[nodiscard]] std::string name() const override {
    return "UseCorrectRoutingTable";
  }
  /// Stateless; reads only controller app state at packet_in time, and
  /// every controller transition already conflicts through kCtrl.
  [[nodiscard]] MonitorDomain monitor_domain() const override {
    return MonitorDomain::kEventLocal;
  }
  void on_events(mc::PropState& ps, std::span<const mc::Event> events,
                 const mc::SystemState& state,
                 std::vector<mc::Violation>& out) const override;

 private:
  of::SwitchId ingress_;
  ExpectedPathFn expected_;
};

}  // namespace nicemc::props

#endif  // NICE_PROPS_CORRECT_ROUTING_TABLE_H
