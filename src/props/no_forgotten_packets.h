// NoForgottenPackets (paper Section 5.2): at the end of a system
// execution, no switch may still hold packets that await a controller
// decision. Controller programs violate this by handling a packet_in
// without ever telling the switch what to do with the buffered packet
// (BUG-IV, V, VI, VIII, IX, XI).
#ifndef NICE_PROPS_NO_FORGOTTEN_PACKETS_H
#define NICE_PROPS_NO_FORGOTTEN_PACKETS_H

#include "mc/property.h"

namespace nicemc::props {

class NoForgottenPackets final : public mc::Property {
 public:
  [[nodiscard]] std::string name() const override {
    return "NoForgottenPackets";
  }
  /// Pure quiescent-state predicate over the switch buffers.
  [[nodiscard]] MonitorDomain monitor_domain() const override {
    return MonitorDomain::kEventLocal;
  }
  void on_events(mc::PropState& ps, std::span<const mc::Event> events,
                 const mc::SystemState& state,
                 std::vector<mc::Violation>& out) const override {
    (void)ps;
    (void)events;
    (void)state;
    (void)out;  // purely a quiescence check
  }
  void at_quiescence(mc::PropState& ps, const mc::SystemState& state,
                     std::vector<mc::Violation>& out) const override;
};

}  // namespace nicemc::props

#endif  // NICE_PROPS_NO_FORGOTTEN_PACKETS_H
