// FlowAffinity (paper Section 8.2): all packets of one TCP connection must
// be delivered to the same server replica. The property is configured with
// the replica host set; deliveries to other hosts are ignored.
#ifndef NICE_PROPS_FLOW_AFFINITY_H
#define NICE_PROPS_FLOW_AFFINITY_H

#include <map>
#include <set>

#include "mc/property.h"
#include "of/packet.h"

namespace nicemc::props {

class FlowAffinityState final : public mc::PropState {
 public:
  std::map<of::FiveTuple, of::HostId> assignment;

  [[nodiscard]] std::unique_ptr<mc::PropState> clone() const override {
    return std::make_unique<FlowAffinityState>(*this);
  }
  void serialize(util::Ser& s) const override {
    s.put_tag('A');
    s.put_u32(static_cast<std::uint32_t>(assignment.size()));
    const util::Renamer* rn = util::Renamer::active();
    auto emit = [&s](const of::FiveTuple& t, of::HostId h) {
      s.put_u64(t.ip_src);
      s.put_u64(t.ip_dst);
      s.put_u64(t.ip_proto);
      s.put_u64(t.tp_src);
      s.put_u64(t.tp_dst);
      s.put_u32(h);
    };
    if (rn == nullptr) {
      for (const auto& [t, h] : assignment) emit(t, h);
    } else {
      std::map<of::FiveTuple, of::HostId> renamed;
      for (const auto& [t, h] : assignment) {
        of::FiveTuple rt = t;
        rt.ip_src = rn->r_ip(t.ip_src);
        rt.ip_dst = rn->r_ip(t.ip_dst);
        renamed.emplace(rt, rn->r_host(h));
      }
      for (const auto& [t, h] : renamed) emit(t, h);
    }
  }
};

class FlowAffinity final : public mc::Property {
 public:
  explicit FlowAffinity(std::set<of::HostId> replicas)
      : replicas_(std::move(replicas)) {}

  [[nodiscard]] std::string name() const override { return "FlowAffinity"; }
  [[nodiscard]] std::unique_ptr<mc::PropState> make_state() const override {
    return std::make_unique<FlowAffinityState>();
  }
  void on_events(mc::PropState& ps, std::span<const mc::Event> events,
                 const mc::SystemState& state,
                 std::vector<mc::Violation>& out) const override;

 private:
  std::set<of::HostId> replicas_;
};

}  // namespace nicemc::props

#endif  // NICE_PROPS_FLOW_AFFINITY_H
