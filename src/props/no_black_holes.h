// NoBlackHoles (paper Section 5.2): no packet is silently dropped. Every
// injected packet must ultimately be delivered to a host or deliberately
// consumed by the controller; flooding must balance copies against
// consumptions. Packets parked in a switch's awaiting-controller buffer
// count as consumed here — leaving them there is NoForgottenPackets' job.
#ifndef NICE_PROPS_NO_BLACK_HOLES_H
#define NICE_PROPS_NO_BLACK_HOLES_H

#include <map>

#include "mc/property.h"
#include "util/rename.h"

namespace nicemc::props {

class NoBlackHolesState final : public mc::PropState {
 public:
  /// Per-uid count of copies currently in flight or queued for delivery.
  std::map<std::uint32_t, std::int64_t> balance;

  [[nodiscard]] std::unique_ptr<mc::PropState> clone() const override {
    return std::make_unique<NoBlackHolesState>(*this);
  }
  void serialize(util::Ser& s) const override {
    s.put_tag('B');
    s.put_u32(static_cast<std::uint32_t>(balance.size()));
    const util::Renamer* rn = util::Renamer::active();
    if (!util::rn_uid_renumbering(rn)) {
      for (const auto& [uid, n] : balance) {
        s.put_u32(uid);
        s.put_i64(n);
      }
    } else if (util::rn_uid_assigning(rn)) {
      // Assign pass: the sorted position is unknown until the uid map is
      // complete — register the keys and emit raw order. These bytes are
      // discarded; the frozen pass below produces the real form.
      for (const auto& [uid, n] : balance) {
        rn->note_uid(uid);
        s.put_u32(uid);
        s.put_i64(n);
      }
    } else {
      std::map<std::uint32_t, std::int64_t> renamed;
      for (const auto& [uid, n] : balance) renamed.emplace(rn->r_uid(uid), n);
      for (const auto& [uid, n] : renamed) {
        s.put_u32(uid);
        s.put_i64(n);
      }
    }
  }
};

class NoBlackHoles final : public mc::Property {
 public:
  [[nodiscard]] std::string name() const override { return "NoBlackHoles"; }
  [[nodiscard]] std::unique_ptr<mc::PropState> make_state() const override {
    return std::make_unique<NoBlackHolesState>();
  }
  void on_events(mc::PropState& ps, std::span<const mc::Event> events,
                 const mc::SystemState& state,
                 std::vector<mc::Violation>& out) const override;
  void at_quiescence(mc::PropState& ps, const mc::SystemState& state,
                     std::vector<mc::Violation>& out) const override;
};

}  // namespace nicemc::props

#endif  // NICE_PROPS_NO_BLACK_HOLES_H
