#include "props/no_black_holes.h"

namespace nicemc::props {

void NoBlackHoles::on_events(mc::PropState& ps,
                             std::span<const mc::Event> events,
                             const mc::SystemState& state,
                             std::vector<mc::Violation>& out) const {
  (void)state;
  auto& st = static_cast<NoBlackHolesState&>(ps);
  for (const mc::Event& e : events) {
    if (const auto* sent = std::get_if<mc::EvPacketSent>(&e)) {
      st.balance[sent->pkt.uid] += 1;
    } else if (const auto* inj = std::get_if<mc::EvCtrlPacketInjected>(&e)) {
      st.balance[inj->pkt.uid] += 1;
    } else if (const auto* proc = std::get_if<mc::EvPacketProcessed>(&e)) {
      // Ingress processing removes the copy from flight; a packet_out
      // release takes it out of the buffer instead (already "consumed").
      st.balance[proc->pkt.uid] +=
          proc->copies_out - (proc->from_buffer ? 0 : 1);
      if (proc->dropped_by_rule) {
        out.push_back(mc::Violation{
            name(), "packet " + proc->pkt.brief() +
                        " dropped by a rule at switch " +
                        std::to_string(proc->sw)});
      }
      if (proc->dropped_buffer_full) {
        out.push_back(mc::Violation{
            name(), "packet " + proc->pkt.brief() +
                        " dropped: buffer full at switch " +
                        std::to_string(proc->sw)});
      }
    } else if (const auto* dead = std::get_if<mc::EvPacketDeadPort>(&e)) {
      st.balance[dead->pkt.uid] -= 1;
      out.push_back(mc::Violation{
          name(), "packet " + dead->pkt.brief() +
                      " vanished at dead port " + std::to_string(dead->port) +
                      " of switch " + std::to_string(dead->sw)});
    } else if (const auto* del = std::get_if<mc::EvPacketDelivered>(&e)) {
      st.balance[del->pkt.uid] -= 1;
    } else if (const auto* drop = std::get_if<mc::EvChannelDrop>(&e)) {
      // Fault-model drop: not a bug in the controller program.
      st.balance[drop->pkt.uid] -= 1;
    } else if (const auto* dup = std::get_if<mc::EvChannelDup>(&e)) {
      // Fault-model duplication: one extra copy is now in flight.
      st.balance[dup->pkt.uid] += 1;
    }
  }
}

void NoBlackHoles::at_quiescence(mc::PropState& ps,
                                 const mc::SystemState& state,
                                 std::vector<mc::Violation>& out) const {
  (void)state;
  const auto& st = static_cast<const NoBlackHolesState&>(ps);
  for (const auto& [uid, n] : st.balance) {
    if (n != 0) {
      out.push_back(mc::Violation{
          name(), "packet uid=" + std::to_string(uid) + " has copy balance " +
                      std::to_string(n) + " at end of execution"});
    }
  }
}

}  // namespace nicemc::props
