#include "props/no_forgotten_packets.h"

#include "mc/system.h"

namespace nicemc::props {

void NoForgottenPackets::at_quiescence(mc::PropState& ps,
                                       const mc::SystemState& state,
                                       std::vector<mc::Violation>& out) const {
  (void)ps;
  for (const of::Switch& sw : state.switches()) {
    if (sw.buffer.empty()) continue;
    std::string msg = "switch " + std::to_string(sw.id) + " still buffers " +
                      std::to_string(sw.buffer.size()) +
                      " packet(s) awaiting controller instruction:";
    for (const auto& [bid, bp] : sw.buffer) {
      msg += " [buf " + std::to_string(bid) + "] " + bp.packet.brief();
    }
    out.push_back(mc::Violation{name(), std::move(msg)});
  }
}

}  // namespace nicemc::props
