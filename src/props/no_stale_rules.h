// NoStaleRules: at the end of a system execution, no installed rule may
// forward out a failed port. A robust controller reacts to OFPT_PORT_STATUS
// by deleting or re-steering the rules that point at the dead link;
// controllers that ignore port status leave black-hole rules behind.
//
// A pure quiescent-state predicate over the flow tables and the switches'
// down-port sets — meaningful only with link repair disabled
// (enable_link_repair = false): with repair enabled, a state with a link
// down still has the repair transition enabled and is never quiescent.
#ifndef NICE_PROPS_NO_STALE_RULES_H
#define NICE_PROPS_NO_STALE_RULES_H

#include "mc/property.h"

namespace nicemc::props {

class NoStaleRules final : public mc::Property {
 public:
  [[nodiscard]] std::string name() const override { return "NoStaleRules"; }
  /// Pure quiescent-state predicate — no monitor state across transitions.
  [[nodiscard]] MonitorDomain monitor_domain() const override {
    return MonitorDomain::kEventLocal;
  }
  void on_events(mc::PropState& ps, std::span<const mc::Event> events,
                 const mc::SystemState& state,
                 std::vector<mc::Violation>& out) const override {
    (void)ps;
    (void)events;
    (void)state;
    (void)out;  // purely a quiescence check
  }
  void at_quiescence(mc::PropState& ps, const mc::SystemState& state,
                     std::vector<mc::Violation>& out) const override;
};

}  // namespace nicemc::props

#endif  // NICE_PROPS_NO_STALE_RULES_H
