// NoForwardingLoops (paper Section 5.2): packets must not traverse any
// <switch, input port> pair more than once. Each packet copy carries its
// visited-hop list; the switch pipeline flags a revisit.
#ifndef NICE_PROPS_NO_FORWARDING_LOOPS_H
#define NICE_PROPS_NO_FORWARDING_LOOPS_H

#include "mc/property.h"

namespace nicemc::props {

class NoForwardingLoops final : public mc::Property {
 public:
  [[nodiscard]] std::string name() const override {
    return "NoForwardingLoops";
  }
  /// Stateless: a revisit is detected from the packet's own hop list.
  [[nodiscard]] MonitorDomain monitor_domain() const override {
    return MonitorDomain::kEventLocal;
  }
  void on_events(mc::PropState& ps, std::span<const mc::Event> events,
                 const mc::SystemState& state,
                 std::vector<mc::Violation>& out) const override;
};

}  // namespace nicemc::props

#endif  // NICE_PROPS_NO_FORWARDING_LOOPS_H
