#include "props/flow_affinity.h"

namespace nicemc::props {

void FlowAffinity::on_events(mc::PropState& ps,
                             std::span<const mc::Event> events,
                             const mc::SystemState& state,
                             std::vector<mc::Violation>& out) const {
  (void)state;
  auto& st = static_cast<FlowAffinityState&>(ps);
  for (const mc::Event& e : events) {
    const auto* del = std::get_if<mc::EvPacketDelivered>(&e);
    if (del == nullptr || !replicas_.contains(del->host)) continue;
    if (del->pkt.hdr.ip_proto != of::kIpProtoTcp) continue;
    const of::FiveTuple t = of::FiveTuple::of_packet(del->pkt.hdr);
    const auto [it, inserted] = st.assignment.emplace(t, del->host);
    if (!inserted && it->second != del->host) {
      out.push_back(mc::Violation{
          name(), "connection " + del->pkt.brief() + " split across replicas " +
                      std::to_string(it->second) + " and " +
                      std::to_string(del->host)});
    }
  }
}

}  // namespace nicemc::props
