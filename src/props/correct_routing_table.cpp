#include "props/correct_routing_table.h"

namespace nicemc::props {

void UseCorrectRoutingTable::on_events(mc::PropState& ps,
                                       std::span<const mc::Event> events,
                                       const mc::SystemState& state,
                                       std::vector<mc::Violation>& out) const {
  (void)ps;
  for (const mc::Event& e : events) {
    const auto* h = std::get_if<mc::EvPacketInHandled>(&e);
    if (h == nullptr || h->sw != ingress_) continue;
    if (h->installs.empty()) continue;  // handler ignored the packet
    const std::set<of::SwitchId> expected =
        expected_(*state.ctrl().app, h->pkt.hdr);
    if (expected.empty()) continue;
    std::set<of::SwitchId> actual;
    for (const auto& [sw, rule] : h->installs) actual.insert(sw);
    if (actual != expected) {
      std::string msg = "handler for " + h->pkt.brief() +
                        " installed rules on switches {";
      for (of::SwitchId sw : actual) msg += std::to_string(sw) + " ";
      msg += "} but the load-appropriate path is {";
      for (of::SwitchId sw : expected) msg += std::to_string(sw) + " ";
      msg += "}";
      out.push_back(mc::Violation{name(), std::move(msg)});
    }
  }
}

}  // namespace nicemc::props
