#include "props/no_forwarding_loops.h"

namespace nicemc::props {

void NoForwardingLoops::on_events(mc::PropState& ps,
                                  std::span<const mc::Event> events,
                                  const mc::SystemState& state,
                                  std::vector<mc::Violation>& out) const {
  (void)ps;
  (void)state;
  for (const mc::Event& e : events) {
    const auto* p = std::get_if<mc::EvPacketProcessed>(&e);
    if (p != nullptr && p->revisited) {
      out.push_back(mc::Violation{
          name(), "packet " + p->pkt.brief() + " re-entered switch " +
                      std::to_string(p->sw) + " on port " +
                      std::to_string(p->in_port)});
    }
  }
}

}  // namespace nicemc::props
