#!/usr/bin/env bash
# Build (Release) and run the state-store representation benchmark (hash vs
# full-state vs COLLAPSE-interned), writing the machine-readable
# BENCH_collapse.json at the repo root (or $1). The benchmark aborts if any
# store mode is not count-equivalent to hash mode, so a green run is also a
# soundness check.
#
# The record carries an `environment` block (git SHA, compiler, Release
# flags, CPU model, core count, timestamp) — see scripts/bench_env.py.
#
# Usage: scripts/bench_collapse.sh [out.json] [reps]
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_collapse.json}"
REPS="${2:-3}"

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j --target bench_collapse >/dev/null

./build/bench_collapse --json "$OUT" "$REPS"
BENCH_TIMESTAMP="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
  python3 scripts/bench_env.py "$OUT"
echo "benchmark record written to $OUT"
