#!/usr/bin/env bash
# Build (Release) and run the symmetry-reduction scaling benchmark
# (k-client symmetric families, symmetry off vs on), writing the
# machine-readable BENCH_sym.json at the repo root (or $1). The benchmark
# aborts if a symmetry-on run disagrees with the unreduced search on any
# point where both exhaust (canonicalized violation sets must be
# identical, unique states must not grow), so a green run is also a
# soundness check.
#
# The record carries an `environment` block (git SHA, compiler, Release
# flags, CPU model, core count, timestamp) — see scripts/bench_env.py.
#
# Usage: scripts/bench_sym.sh [out.json] [reps] [max_clients] [off_budget]
#        [on_budget]
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_sym.json}"
REPS="${2:-2}"
MAX_CLIENTS="${3:-10}"
OFF_BUDGET="${4:-2000000}"
ON_BUDGET="${5:-5000000}"

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j --target bench_sym >/dev/null

./build/bench_sym --json "$OUT" "$REPS" "$MAX_CLIENTS" "$OFF_BUDGET" "$ON_BUDGET"
BENCH_TIMESTAMP="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
  python3 scripts/bench_env.py "$OUT"
echo "benchmark record written to $OUT"
