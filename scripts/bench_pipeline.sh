#!/usr/bin/env bash
# Build (Release) and run the state-pipeline microbenchmarks, updating the
# machine-readable BENCH_pipeline.json at the repo root (or $1).
#
# The output keeps the trajectory schema {before, after, speedup}: an
# existing "before" record is preserved and the fresh run becomes "after"
# (on first creation the run seeds both), so re-running never clobbers the
# committed baseline.
#
# Usage: scripts/bench_pipeline.sh [out.json] [pings] [micro_iters]
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_pipeline.json}"
PINGS="${2:-3}"
ITERS="${3:-20000}"

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j --target bench_pipeline >/dev/null

RECORD="$(mktemp)"
trap 'rm -f "$RECORD"' EXIT
./build/bench_pipeline --json "$RECORD" "$PINGS" "$ITERS"

OUT="$OUT" RECORD="$RECORD" python3 - <<'EOF'
import json, os

record = json.load(open(os.environ["RECORD"]))
out_path = os.environ["OUT"]
before = record
if os.path.exists(out_path):
    try:
        before = json.load(open(out_path)).get("before", record)
    except (json.JSONDecodeError, OSError):
        pass

wrapped = {
    "bench": "pipeline",
    "schema": ("scripts/bench_pipeline.sh emits this trajectory record: "
               "'before' is preserved across runs, 'after' is the latest "
               "run, 'speedup' = before/after"),
    "before": before,
    "after": record,
    "speedup": {
        "micro": {k: round(before["micro_ns"][k] / record["micro_ns"][k], 2)
                  for k in record["micro_ns"]
                  if before["micro_ns"].get(k) and record["micro_ns"][k]},
        "scenarios": {b["name"]: round(a["transitions_per_sec"] /
                                       b["transitions_per_sec"], 2)
                      for b, a in zip(before["scenarios"],
                                      record["scenarios"])
                      if b["transitions_per_sec"]},
    },
}
json.dump(wrapped, open(out_path, "w"), indent=2)
print(f"benchmark record written to {out_path}")
EOF

# Stamp provenance (git SHA, compiler, CPU, timestamp) into the record —
# see scripts/bench_env.py.
BENCH_TIMESTAMP="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
  python3 scripts/bench_env.py "$OUT"
