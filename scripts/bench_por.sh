#!/usr/bin/env bash
# Build (Release) and run the partial-order-reduction benchmark, writing
# the machine-readable BENCH_por.json (or $1): per bundled scenario, the
# transitions explored under NONE / SLEEP / SLEEP+PERSISTENT / SOURCE-DPOR,
# the reduction ratios, and the memoization-layer record (memo-on vs
# memo-off wall time per mode, footprint/discovery hit rates, resident
# bytes). The benchmark enforces its contracts at runtime and exits
# non-zero on any violation, so a successful run doubles as a check:
#   * soundness — identical violation sets / unique-state / quiescent
#     counts across reducing modes, ≤ transitions vs the unreduced run,
#     and the SOURCE-DPOR ≤ SLEEP+PERSISTENT transition gate;
#   * memo count-invisibility — every memo-on run must report counts
#     identical to its memo-off twin;
#   * memo hit-rate floor — the footprint hit rate on scenarios with
#     enough lookups must stay above the keying-regression floor.
#
# Usage: scripts/bench_por.sh [out.json] [repeats] [progress.ndjson]
# `repeats` (default 3) re-runs each cell and keeps the fastest wall
# time, which is what the committed BENCH_por.json should be generated
# with on a quiet machine. A third argument streams NDJSON progress
# snapshots of the telemetry-on runs to that path (CI artifact).
#
# The record carries an `environment` block (git SHA, compiler, Release
# flags, CPU model, core count, timestamp) so committed numbers stay
# comparable across machines — see scripts/bench_env.py.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_por.json}"
REPEATS="${2:-3}"
PROGRESS="${3:-}"

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j --target bench_por >/dev/null

if [ -n "$PROGRESS" ]; then
  ./build/bench_por --json "$OUT" --repeat "$REPEATS" --progress "$PROGRESS"
else
  ./build/bench_por --json "$OUT" --repeat "$REPEATS"
fi
BENCH_TIMESTAMP="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
  python3 scripts/bench_env.py "$OUT"
