#!/usr/bin/env bash
# Build (Release) and run the partial-order-reduction benchmark, writing
# the machine-readable BENCH_por.json (or $1): per bundled scenario, the
# transitions explored under NONE / SLEEP / SLEEP+PERSISTENT / SOURCE-DPOR
# and the
# reduction ratios. The benchmark enforces the soundness contract at
# runtime (identical violation sets and unique-state counts, and the
# SOURCE-DPOR ≤ SLEEP+PERSISTENT transition gate) and exits
# non-zero on any mismatch, so a successful run doubles as a check.
#
# Usage: scripts/bench_por.sh [out.json]
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_por.json}"

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j --target bench_por >/dev/null

./build/bench_por --json "$OUT"
