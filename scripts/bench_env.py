#!/usr/bin/env python3
"""Embed a reproducibility `environment` block into a BENCH_*.json record.

Usage: BENCH_TIMESTAMP=<iso8601> python3 scripts/bench_env.py BENCH_x.json

Numbers without provenance are not comparable: the same scenario runs 3x
faster across compiler versions or CPU generations. Every bench_*.sh
wrapper routes its record through this script, which stamps in the git
SHA, compiler identity and Release flags (from the CMake cache), CPU
model, core count, and the wall-clock timestamp the shell passed in (the
benchmarks themselves cannot know when their record is being committed).
"""
import json
import os
import re
import subprocess
import sys


def first_line(cmd):
    try:
        out = subprocess.run(cmd, capture_output=True, text=True,
                             timeout=10).stdout
        return out.splitlines()[0].strip() if out else "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def cpu_model():
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return "unknown"


def release_flags(cache_path):
    """CMAKE_CXX_FLAGS_RELEASE from the build's CMake cache."""
    try:
        with open(cache_path) as f:
            for line in f:
                m = re.match(r"CMAKE_CXX_FLAGS_RELEASE:\w+=(.*)", line)
                if m:
                    return m.group(1).strip() or "unknown"
    except OSError:
        pass
    return "unknown"


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} BENCH_x.json", file=sys.stderr)
        return 2
    path = sys.argv[1]
    with open(path) as f:
        record = json.load(f)
    record["environment"] = {
        "git_sha": first_line(["git", "rev-parse", "HEAD"]),
        "compiler": first_line([os.environ.get("CXX", "c++"), "--version"]),
        "cxx_flags_release": release_flags(
            os.environ.get("BENCH_CMAKE_CACHE", "build/CMakeCache.txt")),
        "cpu_model": cpu_model(),
        "cores": os.cpu_count(),
        "timestamp_utc": os.environ.get("BENCH_TIMESTAMP", "unknown"),
    }
    with open(path, "w") as f:
        json.dump(record, f, indent=2)
        f.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
